"""Unit tests for the discrete-event simulation kernel."""

import pytest

from repro.sim import (
    Environment,
    Resource,
    SimulationError,
    Store,
    total_events_processed,
)


def test_clock_starts_at_zero():
    env = Environment()
    assert env.now == 0.0


def test_clock_custom_start():
    env = Environment(initial_time=5.0)
    assert env.now == 5.0


def test_timeout_advances_clock():
    env = Environment()
    done = []

    def proc():
        yield env.timeout(3.5)
        done.append(env.now)

    env.process(proc())
    env.run()
    assert done == [3.5]


def test_negative_timeout_rejected():
    env = Environment()
    with pytest.raises(SimulationError):
        env.timeout(-1)


def test_timeout_value_passthrough():
    env = Environment()
    seen = []

    def proc():
        value = yield env.timeout(1, value="payload")
        seen.append(value)

    env.process(proc())
    env.run()
    assert seen == ["payload"]


def test_sequential_timeouts_accumulate():
    env = Environment()
    stamps = []

    def proc():
        yield env.timeout(1)
        stamps.append(env.now)
        yield env.timeout(2)
        stamps.append(env.now)

    env.process(proc())
    env.run()
    assert stamps == [1, 3]


def test_same_time_events_fifo_order():
    env = Environment()
    order = []

    def proc(name):
        yield env.timeout(1)
        order.append(name)

    env.process(proc("a"))
    env.process(proc("b"))
    env.process(proc("c"))
    env.run()
    assert order == ["a", "b", "c"]


def test_process_return_value():
    env = Environment()

    def inner():
        yield env.timeout(1)
        return 42

    def outer(results):
        value = yield env.process(inner())
        results.append(value)

    results = []
    env.process(outer(results))
    env.run()
    assert results == [42]


def test_run_until_event_returns_value():
    env = Environment()

    def proc():
        yield env.timeout(2)
        return "done"

    value = env.run(until=env.process(proc()))
    assert value == "done"
    assert env.now == 2


def test_run_until_time_stops_clock():
    env = Environment()

    def proc():
        yield env.timeout(100)

    env.process(proc())
    env.run(until=10)
    assert env.now == 10


def test_run_until_past_time_rejected():
    env = Environment()
    env.run(until=5)
    with pytest.raises(SimulationError):
        env.run(until=1)


def test_deadlock_detected_when_waiting_on_untriggered_event():
    env = Environment()
    blocker = env.event()

    def proc():
        yield blocker

    with pytest.raises(SimulationError, match="deadlock"):
        env.run(until=env.process(proc()))


def test_event_succeed_wakes_waiter():
    env = Environment()
    gate = env.event()
    seen = []

    def waiter():
        value = yield gate
        seen.append((env.now, value))

    def opener():
        yield env.timeout(4)
        gate.succeed("open")

    env.process(waiter())
    env.process(opener())
    env.run()
    assert seen == [(4, "open")]


def test_event_double_trigger_rejected():
    env = Environment()
    event = env.event()
    event.succeed(1)
    with pytest.raises(SimulationError):
        event.succeed(2)


def test_event_fail_raises_in_waiter():
    env = Environment()
    gate = env.event()
    caught = []

    def waiter():
        try:
            yield gate
        except RuntimeError as exc:
            caught.append(str(exc))

    def failer():
        yield env.timeout(1)
        gate.fail(RuntimeError("server down"))

    env.process(waiter())
    env.process(failer())
    env.run()
    assert caught == ["server down"]


def test_fail_requires_exception_instance():
    env = Environment()
    with pytest.raises(TypeError):
        env.event().fail("not an exception")


def test_process_exception_propagates_to_waiter():
    env = Environment()

    def broken():
        yield env.timeout(1)
        raise ValueError("boom")

    def waiter(caught):
        try:
            yield env.process(broken())
        except ValueError as exc:
            caught.append(str(exc))

    caught = []
    env.process(waiter(caught))
    env.run()
    assert caught == ["boom"]


def test_yield_non_event_is_error():
    env = Environment()

    def bad():
        yield 42

    proc = env.process(bad())
    with pytest.raises(SimulationError):
        env.run(until=proc)


def test_all_of_waits_for_every_child():
    env = Environment()
    results = []

    def proc():
        values = yield env.all_of(
            [env.timeout(3, value="c"), env.timeout(1, value="a")]
        )
        results.append((env.now, values))

    env.process(proc())
    env.run()
    assert results == [(3, ["c", "a"])]


def test_all_of_empty_list_triggers_immediately():
    env = Environment()
    results = []

    def proc():
        values = yield env.all_of([])
        results.append((env.now, values))

    env.process(proc())
    env.run()
    assert results == [(0, [])]


def test_any_of_triggers_on_first():
    env = Environment()
    results = []

    def proc():
        value = yield env.any_of(
            [env.timeout(3, value="slow"), env.timeout(1, value="fast")]
        )
        results.append((env.now, value))

    env.process(proc())
    env.run()
    assert results == [(1, "fast")]


def test_all_of_failure_propagates():
    env = Environment()
    gate = env.event()
    caught = []

    def proc():
        try:
            yield env.all_of([gate, env.timeout(5)])
        except RuntimeError:
            caught.append(env.now)

    def failer():
        yield env.timeout(2)
        gate.fail(RuntimeError("dead"))

    env.process(proc())
    env.process(failer())
    env.run()
    assert caught == [2]


def test_peek_reports_next_event_time():
    env = Environment()
    env.timeout(7)
    assert env.peek() == 7
    env.run()
    assert env.peek() == float("inf")


def test_step_on_empty_queue_rejected():
    env = Environment()
    with pytest.raises(SimulationError):
        env.step()


class TestResource:
    def test_grants_up_to_capacity(self):
        env = Environment()
        res = Resource(env, capacity=2)
        r1, r2 = res.request(), res.request()
        r3 = res.request()
        assert r1.triggered and r2.triggered
        assert not r3.triggered
        assert res.in_use == 2
        assert res.queue_length == 1

    def test_release_grants_fifo(self):
        env = Environment()
        res = Resource(env, capacity=1)
        r1 = res.request()
        r2 = res.request()
        r3 = res.request()
        res.release(r1)
        assert r2.triggered and not r3.triggered
        res.release(r2)
        assert r3.triggered

    def test_release_foreign_request_rejected(self):
        env = Environment()
        res_a = Resource(env)
        res_b = Resource(env)
        req = res_a.request()
        with pytest.raises(SimulationError):
            res_b.release(req)

    def test_capacity_below_one_rejected(self):
        env = Environment()
        with pytest.raises(SimulationError):
            Resource(env, capacity=0)

    def test_fifo_service_order_under_contention(self):
        env = Environment()
        res = Resource(env, capacity=1)
        order = []

        def worker(name, service):
            req = res.request()
            yield req
            yield env.timeout(service)
            order.append((name, env.now))
            res.release(req)

        env.process(worker("first", 5))
        env.process(worker("second", 1))
        env.process(worker("third", 1))
        env.run()
        # Strict FIFO: second waits behind first despite being cheaper.
        assert order == [("first", 5), ("second", 6), ("third", 7)]

    def test_utilization_accounting(self):
        env = Environment()
        res = Resource(env, capacity=1)

        def worker():
            req = res.request()
            yield req
            yield env.timeout(4)
            res.release(req)
            yield env.timeout(6)

        env.process(worker())
        env.run()
        assert env.now == 10
        assert res.utilization(env.now) == pytest.approx(0.4)


class TestStore:
    def test_put_then_get(self):
        env = Environment()
        store = Store(env)
        store.put("x")
        got = []

        def getter():
            item = yield store.get()
            got.append(item)

        env.process(getter())
        env.run()
        assert got == ["x"]

    def test_get_blocks_until_put(self):
        env = Environment()
        store = Store(env)
        got = []

        def getter():
            item = yield store.get()
            got.append((env.now, item))

        def putter():
            yield env.timeout(3)
            store.put("late")

        env.process(getter())
        env.process(putter())
        env.run()
        assert got == [(3, "late")]

    def test_fifo_item_order(self):
        env = Environment()
        store = Store(env)
        for item in ("a", "b", "c"):
            store.put(item)
        got = []

        def getter():
            for _ in range(3):
                item = yield store.get()
                got.append(item)

        env.process(getter())
        env.run()
        assert got == ["a", "b", "c"]

    def test_fifo_getter_order(self):
        env = Environment()
        store = Store(env)
        got = []

        def getter(name):
            item = yield store.get()
            got.append((name, item))

        env.process(getter("g1"))
        env.process(getter("g2"))

        def putter():
            yield env.timeout(1)
            store.put("first")
            store.put("second")

        env.process(putter())
        env.run()
        assert got == [("g1", "first"), ("g2", "second")]

    def test_len_reports_buffered_items(self):
        env = Environment()
        store = Store(env)
        assert len(store) == 0
        store.put(1)
        store.put(2)
        assert len(store) == 2


class TestRunUntilEdgeCases:
    """Regression net pinned down before the kernel hot-path rewrite."""

    def test_run_until_executes_event_exactly_at_limit(self):
        env = Environment()
        fired = []

        def proc():
            yield env.timeout(5)
            fired.append(env.now)

        env.process(proc())
        env.run(until=5)
        assert fired == [5]
        assert env.now == 5

    def test_run_until_leaves_later_events_queued(self):
        env = Environment()
        fired = []

        def proc():
            yield env.timeout(3)
            fired.append("early")
            yield env.timeout(3)
            fired.append("late")

        env.process(proc())
        env.run(until=4)
        assert fired == ["early"]
        assert env.peek() == 6  # the second timeout is still pending
        env.run()
        assert fired == ["early", "late"]

    def test_run_until_now_is_allowed_and_advances_nothing(self):
        env = Environment()
        env.run(until=5)
        env.run(until=5)  # not "in the past": exactly now
        assert env.now == 5

    def test_run_until_with_empty_queue_still_advances_clock(self):
        env = Environment()
        env.run(until=12.5)
        assert env.now == 12.5
        assert env.peek() == float("inf")

    def test_run_until_already_processed_event_returns_value(self):
        env = Environment()

        def proc():
            yield env.timeout(1)
            return "answer"

        process = env.process(proc())
        env.run()
        assert process.processed
        assert env.run(until=process) == "answer"

    def test_run_until_failed_event_reraises(self):
        env = Environment()

        def broken():
            yield env.timeout(1)
            raise ValueError("exploded")

        process = env.process(broken())
        with pytest.raises(ValueError, match="exploded"):
            env.run(until=process)

    def test_zero_delay_timeout_fires_at_current_time(self):
        env = Environment(initial_time=2.0)
        fired = []

        def proc():
            yield env.timeout(0)
            fired.append(env.now)

        env.process(proc())
        env.run()
        assert fired == [2.0]


class TestPeek:
    def test_peek_does_not_advance_clock_or_pop(self):
        env = Environment()
        env.timeout(3)
        assert env.peek() == 3
        assert env.peek() == 3  # idempotent
        assert env.now == 0.0

    def test_peek_tracks_queue_head_across_steps(self):
        env = Environment()
        env.timeout(1)
        env.timeout(4)
        env.step()
        assert env.peek() == 4
        env.step()
        assert env.peek() == float("inf")

    def test_step_processes_exactly_one_event(self):
        env = Environment()
        order = []

        def proc(name, delay):
            yield env.timeout(delay)
            order.append(name)

        env.process(proc("a", 1))
        env.process(proc("b", 1))
        # Two Initialize events, then the two timeouts.
        env.step()
        env.step()
        assert order == []
        env.step()
        assert order == ["a"]


class TestConditionExceptions:
    def test_all_of_first_failure_wins_over_later_failures(self):
        env = Environment()
        caught = []

        def failer(delay, message):
            yield env.timeout(delay)
            raise RuntimeError(message)

        def waiter():
            try:
                yield env.all_of(
                    [env.process(failer(2, "second")),
                     env.process(failer(1, "first"))]
                )
            except RuntimeError as exc:
                caught.append((env.now, str(exc)))

        env.process(waiter())
        env.run()
        assert caught == [(1, "first")]

    def test_all_of_failure_does_not_wait_for_slow_children(self):
        env = Environment()
        caught = []

        def failer():
            yield env.timeout(1)
            raise RuntimeError("early death")

        def waiter():
            try:
                yield env.all_of([env.process(failer()), env.timeout(100)])
            except RuntimeError:
                caught.append(env.now)

        env.process(waiter())
        env.run()
        assert caught == [1]

    def test_all_of_over_already_processed_children(self):
        env = Environment()
        done = []

        def child(value):
            yield env.timeout(1)
            return value

        children = [env.process(child("x")), env.process(child("y"))]

        def late_waiter():
            yield env.timeout(5)  # children long finished by now
            values = yield env.all_of(children)
            done.append((env.now, values))

        env.process(late_waiter())
        env.run()
        assert done == [(5, ["x", "y"])]

    def test_any_of_failure_propagates(self):
        env = Environment()
        caught = []

        def failer():
            yield env.timeout(1)
            raise RuntimeError("fast failure")

        def waiter():
            try:
                yield env.any_of([env.process(failer()), env.timeout(10)])
            except RuntimeError as exc:
                caught.append((env.now, str(exc)))

        env.process(waiter())
        env.run()
        assert caught == [(1, "fast failure")]

    def test_any_of_ignores_failures_after_first_success(self):
        env = Environment()
        results = []

        def failer():
            yield env.timeout(5)
            raise RuntimeError("too late to matter")

        def waiter():
            value = yield env.any_of(
                [env.timeout(1, value="winner"), env.process(failer())]
            )
            results.append(value)

        env.process(waiter())
        env.run()  # the late failure must not escape the kernel either
        assert results == ["winner"]

    def test_any_of_over_already_processed_child(self):
        env = Environment()
        results = []

        def child():
            yield env.timeout(1)
            return "done"

        finished = env.process(child())

        def late_waiter():
            yield env.timeout(3)
            value = yield env.any_of([finished, env.timeout(50)])
            results.append((env.now, value))

        env.process(late_waiter())
        env.run()
        assert results == [(3, "done")]

    def test_condition_rejects_mixed_environments(self):
        env_a = Environment()
        env_b = Environment()
        with pytest.raises(SimulationError):
            env_a.all_of([env_a.timeout(1), env_b.timeout(1)])


class TestTieBreaking:
    def test_equal_timestamps_resolve_in_scheduling_order(self):
        env = Environment()
        order = []

        def leaf(name):
            yield env.timeout(2)
            order.append(name)

        def spawner():
            yield env.timeout(1)
            # Both children scheduled at the same instant, from inside a
            # callback: dispatch must follow creation order.
            env.process(leaf("first-created"))
            env.process(leaf("second-created"))

        env.process(spawner())
        env.run()
        assert order == ["first-created", "second-created"]

    def test_interleaved_sources_keep_global_sequence_order(self):
        env = Environment()
        order = []

        def waiter(name, gate):
            yield gate
            order.append(name)

        def direct(name):
            yield env.timeout(4)
            order.append(name)

        gate_a, gate_b = env.event(), env.event()
        env.process(waiter("wait-a", gate_a))
        env.process(direct("timeout-x"))
        env.process(waiter("wait-b", gate_b))

        def opener():
            yield env.timeout(4)
            gate_b.succeed()  # triggered after the t=4 timeouts fired
            gate_a.succeed()

        env.process(opener())
        env.run()
        # timeout-x was scheduled first (t=4); opener's timeout is next,
        # then the gates trigger in succeed() order at the same instant.
        assert order == ["timeout-x", "wait-b", "wait-a"]

    def test_tie_break_is_stable_across_runs(self):
        def trace():
            env = Environment()
            log = []

            def worker(name):
                for _ in range(3):
                    yield env.timeout(1)
                    log.append((name, env.now))

            for name in ("a", "b", "c", "d"):
                env.process(worker(name))
            env.run()
            return log

        assert trace() == trace()


class TestEventAccounting:
    def test_events_processed_counts_dispatches(self):
        env = Environment()

        def proc():
            yield env.timeout(1)
            yield env.timeout(2)

        env.process(proc())
        env.run()
        # Initialize + two timeouts + the process-completion event.
        assert env.events_processed == 4

    def test_total_events_is_process_wide_and_monotonic(self):
        before = total_events_processed()
        env = Environment()

        def proc():
            yield env.timeout(1)

        env.process(proc())
        env.run()
        assert total_events_processed() - before == env.events_processed

    def test_run_until_event_counts_too(self):
        env = Environment()

        def proc():
            yield env.timeout(1)

        env.run(until=env.process(proc()))
        assert env.events_processed > 0


class TestTimeoutPooling:
    def test_bare_timeouts_are_recycled(self):
        env = Environment()
        seen = []

        def proc():
            first = env.timeout(1)
            yield first
            seen.append(first)
            yield env.timeout(1)
            third = env.timeout(1)  # the free list serves `first` again
            seen.append(third)
            yield third

        env.process(proc())
        env.run()
        assert seen[0] is seen[1]

    def test_valued_timeouts_are_never_recycled(self):
        env = Environment()
        checks = []

        def proc():
            valued = env.timeout(1, value="payload")
            got = yield valued
            checks.append(got)
            yield env.timeout(1)
            fresh = env.timeout(1)
            checks.append(fresh is not valued)
            yield fresh
            checks.append(valued.value)  # valued stays inspectable

        env.process(proc())
        env.run()
        assert checks == ["payload", True, "payload"]

    def test_pooled_timeout_keeps_negative_delay_check(self):
        env = Environment()

        def proc():
            yield env.timeout(1)  # populate the free list
            yield env.timeout(1)
            with pytest.raises(SimulationError):
                env.timeout(-1)
            yield env.timeout(2)

        env.run(until=env.process(proc()))

    def test_yielding_a_recycled_bare_timeout_is_loud(self):
        env = Environment()

        def bad():
            retained = env.timeout(1)
            yield retained
            yield env.timeout(1)  # `retained` is recycled at this point
            yield retained  # contract violation: must not come back

        process = env.process(bad())
        with pytest.raises(SimulationError, match="recycled bare Timeout"):
            env.run(until=process)

    def test_run_until_bare_timeout_shared_with_process(self):
        # The run target is exempt from recycling: even when a process
        # consumes the same bare timeout, run(until=t) stops at t.
        env = Environment()
        shared = env.timeout(5)

        def proc():
            yield shared
            yield env.timeout(1)
            yield env.timeout(1)

        env.process(proc())
        assert env.run(until=shared) is None
        assert env.now == 5.0

    def test_run_until_target_with_two_waiters_still_stops_at_target(self):
        # Even the second waiter (resumed through Process._resume rather
        # than the inlined dispatch) must not recycle the run target out
        # from under the loop.
        env = Environment()
        shared = env.timeout(1)
        resumed = []

        def waiter(name):
            yield shared
            resumed.append(name)
            yield env.timeout(1)

        env.process(waiter("first"))
        env.process(waiter("second"))
        assert env.run(until=shared) is None
        assert env.now == 1.0
        assert resumed == ["first", "second"]

    def test_step_driven_shared_timeout_is_not_recycled_under_second_waiter(self):
        # step() dispatches through Event._run_callbacks, where the first
        # waiter resumes while the second registrant still sits in the
        # callbacks list — the timeout must not enter the pool then.
        env = Environment()
        shared = env.timeout(1)
        stamps = []

        def waiter(name):
            yield shared
            yield env.timeout(3)  # must NOT be served the shared instance
            stamps.append((name, env.now))

        env.process(waiter("a"))
        env.process(waiter("b"))
        while env.peek() != float("inf"):
            env.step()
        assert stamps == [("a", 4.0), ("b", 4.0)]

    def test_pooling_does_not_change_timing(self):
        env = Environment()
        stamps = []

        def proc():
            for delay in (1, 2, 3, 4):
                yield env.timeout(delay)
                stamps.append(env.now)

        env.process(proc())
        env.run()
        assert stamps == [1, 3, 6, 10]


def test_determinism_same_program_same_trace():
    def build_and_run():
        env = Environment()
        trace = []

        def worker(name, delays):
            for delay in delays:
                yield env.timeout(delay)
                trace.append((name, env.now))

        env.process(worker("a", [1, 2, 3]))
        env.process(worker("b", [2, 2, 2]))
        env.process(worker("c", [3, 1, 1]))
        env.run()
        return trace

    assert build_and_run() == build_and_run()
