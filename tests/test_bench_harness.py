"""Tests for the benchmark harness utilities."""

import json

import pytest

from repro.bench.harness import Timer, bench_scale, format_table, get_context


class TestFormatTable:
    def test_contains_title_headers_rows(self):
        table = format_table("My Experiment", ["a", "b"], [[1, 2.5], [3, 4.0]])
        assert "My Experiment" in table
        assert "a" in table and "b" in table
        assert "2.50" in table

    def test_alignment_consistent_width(self):
        table = format_table("t", ["col"], [["short"], ["a-much-longer-cell"]])
        lines = table.splitlines()
        data_lines = lines[1:]
        assert len({len(line) for line in data_lines if "|" in line or "-" in line}) <= 2

    def test_empty_rows(self):
        table = format_table("t", ["x"], [])
        assert "t" in table

    def test_float_formatting(self):
        table = format_table("t", ["v"], [[0.000123], [12345.6], [0]])
        assert "0.000123" in table
        assert "12,346" in table


class TestEmit:
    def test_writes_json_artifact(self, tmp_path, monkeypatch):
        import repro.bench.harness as harness

        monkeypatch.setattr(harness, "RESULTS_DIR", tmp_path)
        harness.emit("Title", ["h"], [[1]], "unit_test_artifact")
        payload = json.loads((tmp_path / "unit_test_artifact.json").read_text())
        assert payload["title"] == "Title"
        assert payload["rows"] == [[1]]

    def test_artifacts_carry_perf_metadata(self, tmp_path, monkeypatch):
        import repro.bench.harness as harness
        from repro.sim import Environment

        monkeypatch.setattr(harness, "RESULTS_DIR", tmp_path)
        harness.emit("First", ["h"], [[1]], "meta_probe_a")
        # Simulated work between artifacts shows up in the next metadata
        # window as kernel events.
        env = Environment()

        def ticker():
            for _ in range(100):
                yield env.timeout(1.0)

        env.process(ticker())
        env.run()
        harness.emit("Second", ["h"], [[2]], "meta_probe_b")
        payload = json.loads((tmp_path / "meta_probe_b.json").read_text())
        meta = payload["metadata"]
        assert set(meta) == {"wall_clock_seconds", "kernel_events",
                             "events_per_second"}
        assert meta["wall_clock_seconds"] >= 0
        assert meta["kernel_events"] >= 100  # the ticker's events at least
        assert meta["events_per_second"] >= 0


class TestContext:
    def test_memoized_per_key(self):
        a = get_context("freebase", scale=0.05, seed=3)
        b = get_context("freebase", scale=0.05, seed=3)
        assert a is b
        c = get_context("freebase", scale=0.05, seed=4)
        assert c is not a

    def test_workload_memoized(self):
        ctx = get_context("freebase", scale=0.05, seed=3)
        w1 = ctx.workload(num_hotspots=3, queries_per_hotspot=3)
        w2 = ctx.workload(num_hotspots=3, queries_per_hotspot=3)
        assert w1 is w2
        w3 = ctx.workload(num_hotspots=4, queries_per_hotspot=3)
        assert w3 is not w1

    def test_bench_scale_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SCALE", "0.125")
        assert bench_scale() == 0.125
        monkeypatch.delenv("REPRO_BENCH_SCALE")
        assert bench_scale(0.75) == 0.75

    def test_bench_scale_rejects_garbage(self, monkeypatch):
        """A typo'd CI variable fails loudly at startup, naming the var."""
        for bad in ("fast", "", "1.0.0"):
            monkeypatch.setenv("REPRO_BENCH_SCALE", bad)
            with pytest.raises(ValueError, match="REPRO_BENCH_SCALE"):
                bench_scale()

    def test_bench_scale_rejects_nonpositive_and_nonfinite(self, monkeypatch):
        for bad in ("0", "-0.5", "inf", "nan"):
            monkeypatch.setenv("REPRO_BENCH_SCALE", bad)
            with pytest.raises(ValueError, match="positive, finite"):
                bench_scale()


class TestTimer:
    def test_measures_elapsed(self):
        with Timer() as t:
            sum(range(10000))
        assert t.elapsed >= 0.0
