"""Storage failover end-to-end: retry-through-outage, repair /
re-replication, fail-back convergence, downtime metrics, tolerated
update writes, replica-aware reads under failure, and heterogeneous
speed profiles."""

import pytest

from repro import (
    ClusterConfig,
    GraphService,
    SpeedProfiles,
    TopologyConfig,
)
from repro.core import ChaosEvent, NeighborAggregationQuery
from repro.core.queries import QueryIdAllocator, query_ids_from
from repro.costs import ComputeModel, StorageServiceModel
from repro.graph import Graph, GraphUpdate, ring_of_cliques
from repro.storage import StorageServerDown, pick_read_replica
from repro.workloads import poisson_arrivals


@pytest.fixture(scope="module")
def graph():
    return ring_of_cliques(8, 5)


def _config(**kwargs):
    defaults = dict(
        num_processors=3,
        num_storage_servers=2,
        routing="hash",
        cache_capacity_bytes=1 << 20,
        topology=TopologyConfig(repair_interval_s=5e-5),
    )
    defaults.update(kwargs)
    return ClusterConfig(**defaults)


def _queries(nodes, hops=2):
    return [NeighborAggregationQuery(node=n, hops=hops) for n in nodes]


def _serve_through_outage(graph, config, fail_at=5e-5, recover_at=6e-4):
    """Open-loop serve across a scheduled outage; returns
    (service report, topology snapshot)."""
    with GraphService.open(graph, config) as service:
        with query_ids_from(QueryIdAllocator(start=4_000_000)):
            queries = _queries(
                [n for n in range(80) if graph.has_node(n)] * 2
            )
        arrivals = poisson_arrivals(
            queries, rate=120_000.0, tenant="t", seed=9
        )
        service.topology.schedule([
            ChaosEvent(at=fail_at, action="fail_server", target=0),
            ChaosEvent(at=recover_at, action="recover_server", target=0),
        ])
        with service.session() as session:
            session.serve(arrivals)
            report = session.report()
        return report, service.topology.snapshot()


class TestFailover:
    def test_queries_survive_an_outage(self, graph):
        report, snap = _serve_through_outage(graph, _config())
        # Every query completed despite the dead server: a mix of
        # retry-until-repair and directory-redirected reads.
        assert len(report.records) == 80
        assert snap["repair_records"] > 0
        assert snap["storage_retries"] > 0

    def test_failback_converges_to_hash_placement(self, graph):
        with GraphService.open(graph, _config()) as service:
            topology = service.topology
            with service.session() as session:
                session.submit_many(_queries(range(10)))
                session.drain()
                topology.fail_server(0)
                # Let repair re-home the dead server's records.
                service.env.run(until=service.env.now + 2e-3)
                assert len(topology.directory) > 0
                assert topology.snapshot()["failover_keys"] > 0
                topology.recover_server(0)
                service.env.run(until=service.env.now + 5e-3)
                # Fail-back drained every exception: pure hash again.
                assert len(topology.directory) == 0
                assert topology.snapshot()["failover_keys"] == 0
                assert topology.failbacks > 0
                session.submit_many(_queries(range(10, 20)))
                session.drain()

    def test_no_failover_ablation_surfaces_the_error(self, graph):
        config = _config(topology=TopologyConfig(failover=False))
        with pytest.raises(StorageServerDown):
            _serve_through_outage(graph, config, recover_at=1.0)

    def test_downtime_windows_in_report(self, graph):
        report, _snap = _serve_through_outage(graph, _config())
        summary = report.summary()
        assert summary["storage_outages"] == 1
        assert summary["storage_recoveries"] == 1
        assert summary["storage_downtime_s"] == pytest.approx(
            6e-4 - 5e-5
        )
        assert summary["mean_recovery_s"] == pytest.approx(6e-4 - 5e-5)
        assert report.recovery_times_s() == [pytest.approx(6e-4 - 5e-5)]
        stats = report.per_server_stats()
        assert stats[0]["downtime_windows"] == [[5e-5, 6e-4]]
        assert stats[0]["recovered"] is True
        assert "downtime_windows" not in stats[1]  # never failed

    def test_repair_respects_byte_budget(self, graph):
        tiny = _config(topology=TopologyConfig(
            repair_interval_s=5e-5, repair_byte_budget=64,
        ))
        big = _config()
        with GraphService.open(graph, tiny) as service:
            service.topology.fail_server(0)
            service.env.run(until=2e-4)
            few = service.topology.repair_records
        with GraphService.open(graph, big) as service:
            service.topology.fail_server(0)
            service.env.run(until=2e-4)
            many = service.topology.repair_records
        assert 0 < few < many


class TestToleratedWrites:
    def test_update_write_failure_is_counted_not_fatal(self):
        graph = ring_of_cliques(8, 5)  # private: updates mutate the graph
        with GraphService.open(graph, _config()) as service:
            topology = service.topology
            topology.fail_server(0)
            # A batch touching the dead server's records: without
            # failover this raises; with it the loss is counted and
            # healed by repair once the server returns.
            report = service.apply_updates(
                [GraphUpdate(kind="add_edge", u=0, v=7)]
            )
            assert report.updates_applied == 1
            assert topology.write_failures >= 1
            assert topology.snapshot()["suspect_writes"] > 0
            topology.recover_server(0)
            service.env.run(until=service.env.now + 5e-3)
            assert topology.snapshot()["suspect_writes"] == 0

    def test_without_failover_the_loss_is_counted_but_not_healed(self):
        graph = ring_of_cliques(8, 5)
        config = _config(topology=TopologyConfig(failover=False))
        with GraphService.open(graph, config) as service:
            topology = service.topology
            topology.fail_server(0)
            report = service.apply_updates(
                [GraphUpdate(kind="add_edge", u=0, v=7)]
            )
            assert report.updates_applied == 1
            assert topology.write_failures >= 1
            # No repair without failover: nothing becomes a suspect and
            # the recovered server keeps whatever bytes it had.
            assert topology.snapshot()["suspect_writes"] == 0
            topology.recover_server(0)
            service.env.run(until=service.env.now + 2e-3)
            assert topology.repair_records == 0

    def test_static_cluster_still_raises_on_write_failure(self):
        # topology=None keeps the historical contract: a dead server in
        # the write path is a hard error.
        graph = ring_of_cliques(8, 5)
        config = _config(topology=None)
        with GraphService.open(graph, config) as service:
            service.tier.servers[0].fail()
            with pytest.raises(StorageServerDown):
                service.apply_updates(
                    [GraphUpdate(kind="add_edge", u=0, v=7)]
                )
            service.close(drain=False)


class TestReplicaReadsUnderFailure:
    """Satellite coverage for pick_read_replica's failure paths, driven
    through a real tier rather than stubs."""

    def test_least_loaded_live_replica_serves_the_read(self, graph):
        with GraphService.open(graph, _config()) as service:
            topology = service.topology
            tier = service.tier
            key = next(
                k for k in sorted(graph.nodes())
                if tier.partitioner(k, tier.num_servers) == 0
            )
            idx = int(service.assets.compact[key])
            topology.directory.place(key, idx, 0, (0, 1))
            # Both replicas alive: deterministic tie-break = directory
            # order (server 0 first).
            assert tier.locate(key).server_id == 0
            # Kill the first: reads fail over to the live copy.
            topology.fail_server(0)
            assert tier.locate(key).server_id == 1
            # All dead: the first replica surfaces the error.
            topology.fail_server(1)
            assert tier.locate(key).server_id == 0
            with pytest.raises(StorageServerDown):
                service.env.run(until=service.env.process(
                    tier.servers[tier.locate(key).server_id]
                    .serve_process(1, 64)
                ))
            service.close(drain=False)

    def test_pick_read_replica_prefers_shorter_pipeline(self, graph):
        with GraphService.open(graph, _config()) as service:
            tier = service.tier
            # Occupy server 0's pipeline so 1 is strictly less loaded.
            request = tier.servers[0].pipeline.request()
            assert pick_read_replica((0, 1), tier.servers) == 1
            tier.servers[0].pipeline.release(request)
            assert pick_read_replica((0, 1), tier.servers) == 0
            service.close(drain=False)


class TestSpeedProfiles:
    def test_validation_and_defaults(self):
        with pytest.raises(ValueError, match="positive"):
            SpeedProfiles(processors=(0.0,))
        with pytest.raises(ValueError, match="positive"):
            StorageServiceModel().scaled(0.0)
        with pytest.raises(ValueError, match="positive"):
            ComputeModel().scaled(-1.0)
        profile = SpeedProfiles(processors=(2.0,), storage=(0.5,))
        assert profile.processor_speed(0) == 2.0
        assert profile.processor_speed(5) == 1.0  # beyond the tuple
        assert profile.storage_speed(0) == 0.5
        assert profile.storage_speed(3) == 1.0

    def test_scaled_models_divide_costs(self):
        storage = StorageServiceModel().scaled(2.0)
        assert storage.per_key == StorageServiceModel().per_key / 2.0
        assert storage.write_per_byte == (
            StorageServiceModel().write_per_byte / 2.0
        )
        compute = ComputeModel().scaled(4.0)
        assert compute.per_node == ComputeModel().per_node / 4.0
        assert StorageServiceModel().scaled(1.0) is not None

    def test_service_applies_profiles(self, graph):
        profile = SpeedProfiles(processors=(1.0, 3.0), storage=(1.0, 2.0))
        config = ClusterConfig(
            num_processors=2, num_storage_servers=2, routing="hash",
            cache_capacity_bytes=1 << 20, speed_profiles=profile,
        )
        with GraphService.open(graph, config) as service:
            assert service.processors[0].costs.compute.per_node == (
                ComputeModel().per_node
            )
            assert service.processors[1].costs.compute.per_node == (
                ComputeModel().per_node / 3.0
            )
            assert service.tier.servers[1].service.per_key == (
                config.costs.storage.per_key / 2.0
            )

    def test_fast_processor_absorbs_more_next_ready_traffic(self, graph):
        def executed(profile):
            config = ClusterConfig(
                num_processors=2, num_storage_servers=2,
                routing="next_ready", cache_capacity_bytes=1 << 20,
                speed_profiles=profile,
            )
            with GraphService.open(graph, config) as service:
                with service.session() as session:
                    session.submit_many(_queries(
                        [n for n in range(200) if graph.has_node(n)],
                        hops=3,
                    ))
                    session.drain()
                return [p.queries_executed for p in service.processors]

        fair = executed(None)
        skewed = executed(SpeedProfiles(processors=(1.0, 8.0)))
        # Homogeneous hardware splits roughly evenly; an 8x-faster
        # second processor acks faster and wins more dispatches.
        assert abs(fair[0] - fair[1]) < abs(skewed[0] - skewed[1])
        assert skewed[1] > skewed[0]

    def test_joiner_inherits_its_profile_speed(self, graph):
        profile = SpeedProfiles(processors=(1.0, 1.0, 1.0, 5.0))
        config = _config(speed_profiles=profile)
        with GraphService.open(graph, config) as service:
            pid = service.topology.add_processor()
            assert pid == 3
            assert service.processors[3].costs.compute.per_node == (
                ComputeModel().per_node / 5.0
            )
            explicit = service.topology.add_processor(speed=2.0)
            assert service.processors[explicit].costs.compute.per_node == (
                ComputeModel().per_node / 2.0
            )
