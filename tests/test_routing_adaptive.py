"""Unit tests for the adaptive routing strategy (audition, commit, drift)."""

import pytest

from repro.core import (
    ClusterConfig,
    GRoutingCluster,
    GraphAssets,
    NeighborAggregationQuery,
    RandomWalkQuery,
    ReachabilityQuery,
    query_class,
)
from repro.core.routing import AdaptiveRouting, RoutingFeedback, RoutingStrategy
from repro.graph import ring_of_cliques


class StubArm(RoutingStrategy):
    """Deterministic arm: always picks one processor, counts calls."""

    def __init__(self, name, processor=0):
        self.name = name
        self.processor = processor
        self.chosen = 0
        self.dispatches = 0
        self.feedbacks = 0

    def choose(self, _query, _loads):
        self.chosen += 1
        return self.processor

    def on_dispatch(self, _query, _processor):
        self.dispatches += 1

    def on_feedback(self, _feedback):
        self.feedbacks += 1


def make_strategy(**kwargs):
    arms = {name: StubArm(name) for name in ("a", "b", "c")}
    params = dict(
        epoch=2,
        audition_rounds=1,
        audition_delay=0,
        epsilon=0.0,
        epsilon_min=0.0,
        priors={"point": "a", "walk": "a", "traversal": "a"},
        seed=7,
    )
    params.update(kwargs)
    return AdaptiveRouting(arms, **params), arms


def agg(node, hops=2):
    return NeighborAggregationQuery(node=node, hops=hops)


def feedback(query, response=10e-6, hits=8, misses=8, processor=0,
             loads=(1, 1, 1)):
    return RoutingFeedback(
        query=query,
        processor=processor,
        response_time=response,
        sojourn_time=response,
        stolen=False,
        cache_hits=hits,
        cache_misses=misses,
        processor_hit_rate=0.5,
        loads=tuple(loads),
    )


def run_query(strategy, query, response=10e-6, hits=8, misses=8):
    """Route one query and immediately deliver its feedback."""
    strategy.choose(query, [0, 0, 0])
    label = strategy.decision_label(query)
    strategy.on_feedback(feedback(query, response=response, hits=hits,
                                  misses=misses))
    return label


class TestQueryClass:
    def test_classes(self):
        assert query_class(agg(0, hops=1)) == "point"
        assert query_class(agg(0, hops=3)) == "traversal"
        assert query_class(RandomWalkQuery(node=0)) == "walk"
        assert query_class(ReachabilityQuery(node=0, target=1)) == "traversal"


class TestValidation:
    def test_rejects_empty_arms(self):
        with pytest.raises(ValueError):
            AdaptiveRouting({})

    @pytest.mark.parametrize("kwargs", [
        {"epoch": 0},
        {"audition_rounds": -1},
        {"audition_delay": -1},
        {"epsilon": 1.5},
        {"epsilon_min": -0.1},
        {"epsilon_decay": -1},
        {"switch_margin": 1.0},
        {"drift_threshold": 0},
        {"drift_patience": 0},
        {"feedback_alpha": 0},
    ])
    def test_rejects_bad_params(self, kwargs):
        with pytest.raises(ValueError):
            AdaptiveRouting({"a": StubArm("a")}, **kwargs)


class TestAudition:
    def test_audition_cycles_arms_palindromically(self):
        strategy, arms = make_strategy(epoch=2, audition_rounds=2)
        labels = [run_query(strategy, agg(i)) for i in range(12)]
        arms_seen = [label.split(":")[1] for label in labels]
        # Two rounds over three arms, 2 queries per epoch, second round
        # reversed: a a b b c c | c c b b a a
        assert arms_seen == list("aabbcc" + "ccbbaa")

    def test_mode_transitions_to_committed(self):
        strategy, _ = make_strategy()
        assert strategy.mode == "audition"
        for i in range(6):
            run_query(strategy, agg(i))
        assert strategy.mode == "committed"

    def test_single_arm_skips_audition(self):
        strategy = AdaptiveRouting({"only": StubArm("only")})
        assert strategy.mode == "committed"
        assert strategy.choose(agg(0), [0]) == 0

    def test_delayed_audition_runs_priors_first(self):
        strategy, _ = make_strategy(audition_delay=10)
        labels = [run_query(strategy, agg(i)) for i in range(10)]
        # Before the delay expires, the traffic-light prior routes.
        assert all(label == "adaptive:a" for label in labels)
        assert strategy.mode == "committed"
        follow = [run_query(strategy, agg(100 + i)) for i in range(6)]
        # Then the audition cycles every arm.
        assert [f.split(":")[1] for f in follow] == list("aabbcc")

    def test_audition_extends_until_arms_measured(self):
        # Feedback withheld entirely: after the scheduled epochs the
        # strategy keeps auditioning (starved arms) instead of committing.
        strategy, _ = make_strategy(epoch=2, audition_rounds=1)
        for i in range(10):
            strategy.choose(agg(i), [0, 0, 0])
        assert strategy.mode == "audition"


class TestCommit:
    def test_commits_to_lowest_miss_ratio_arm(self):
        strategy, arms = make_strategy()
        # Audition: arm 'b' shows far fewer misses than 'a' and 'c'.
        ratios = {"a": 12, "b": 1, "c": 12}
        for i in range(6):
            query = agg(i)
            strategy.choose(query, [0, 0, 0])
            arm = strategy.decision_label(query).split(":")[1]
            strategy.on_feedback(feedback(query, misses=ratios[arm],
                                          hits=16 - ratios[arm]))
        assert strategy.mode == "committed"
        label = run_query(strategy, agg(100))
        assert label == "adaptive:b"

    def test_decision_label_defaults_to_name(self):
        strategy, _ = make_strategy()
        assert strategy.decision_label(agg(0)) == "adaptive"

    def test_commit_is_sticky_between_auditions(self):
        strategy, _ = make_strategy()
        # 'b' wins the audition decisively.
        ratios = {"a": 10, "b": 4, "c": 10}
        for i in range(6):
            query = agg(i)
            strategy.choose(query, [0, 0, 0])
            arm = strategy.decision_label(query).split(":")[1]
            strategy.on_feedback(feedback(query, misses=ratios[arm],
                                          hits=16 - ratios[arm]))
        assert run_query(strategy, agg(10)) == "adaptive:b"
        # Probe-style score updates cannot overturn the commitment
        # mid-generation, even with a decisive-looking gap.
        strategy._score_ewma[("traversal", "a")] = 0.01
        assert run_query(strategy, agg(11)) == "adaptive:b"

    def test_reaudition_switches_on_decisive_gap(self):
        strategy, _ = make_strategy(switch_margin=0.1)
        ratios = {"a": 10, "b": 4, "c": 10}
        for i in range(6):
            query = agg(i)
            strategy.choose(query, [0, 0, 0])
            arm = strategy.decision_label(query).split(":")[1]
            strategy.on_feedback(feedback(query, misses=ratios[arm],
                                          hits=16 - ratios[arm]))
        assert run_query(strategy, agg(10)) == "adaptive:b"
        # A fresh audition where 'a' now clearly wins flips the commitment.
        strategy.trigger_audition()
        ratios = {"a": 1, "b": 12, "c": 12}
        for i in range(20, 26):
            query = agg(i)
            strategy.choose(query, [0, 0, 0])
            arm = strategy.decision_label(query).split(":")[1]
            strategy.on_feedback(feedback(query, misses=ratios[arm],
                                          hits=16 - ratios[arm]))
        assert run_query(strategy, agg(30)) == "adaptive:a"
        assert strategy.switches.get("traversal", 0) >= 1

    def test_feedback_forwarded_to_arms(self):
        strategy, arms = make_strategy()
        run_query(strategy, agg(0))
        assert sum(arm.feedbacks for arm in arms.values()) == 3

    def test_dispatch_forwarded_to_all_arms(self):
        strategy, arms = make_strategy()
        strategy.on_dispatch(agg(0), 1)
        assert all(arm.dispatches == 1 for arm in arms.values())


class TestDrift:
    def _committed_strategy(self):
        strategy, arms = make_strategy(
            min_drift_samples=4, drift_patience=3, drift_threshold=0.5,
        )
        for i in range(6):
            run_query(strategy, agg(i), response=10e-6)
        assert strategy.mode == "committed"
        # Establish the committed-phase latency baseline.
        for i in range(50, 70):
            run_query(strategy, agg(i), response=10e-6)
        return strategy

    def test_sustained_latency_spike_triggers_reaudition(self):
        strategy = self._committed_strategy()
        assert strategy.auditions == 1
        # Committed arm latency jumps 10x and stays there.
        for i in range(100, 140):
            run_query(strategy, agg(i), response=100e-6)
        assert strategy.auditions == 2

    def test_stable_latency_never_reauditions(self):
        strategy = self._committed_strategy()
        for i in range(100, 160):
            run_query(strategy, agg(i), response=10e-6)
        assert strategy.auditions == 1

    def test_class_hit_rate_collapse_triggers_reaudition(self):
        strategy, _ = make_strategy(min_drift_samples=4, hit_rate_drop=0.2)
        # Warm audition + committed phase: high hit ratio.
        for i in range(20):
            run_query(strategy, agg(i), hits=15, misses=1)
        assert strategy.mode == "committed"
        assert strategy.auditions == 1
        # The hotspot moves: the class's hit ratio collapses.
        for i in range(100, 200):
            run_query(strategy, agg(i), hits=0, misses=16)
            if strategy.mode == "audition":
                break
        assert strategy.auditions == 2

    def test_reaudition_recommits_to_new_best_arm(self):
        # Shifting-hotspot scenario: 'a' wins the first audition, the world
        # changes (a's latency and hit ratio degrade), and after the
        # triggered re-audition the strategy commits to 'b'.
        strategy, _ = make_strategy(
            min_drift_samples=4, drift_patience=3, drift_threshold=0.5,
        )
        ratios = {"a": 1, "b": 6, "c": 12}
        for i in range(6):
            query = agg(i)
            strategy.choose(query, [0, 0, 0])
            arm = strategy.decision_label(query).split(":")[1]
            strategy.on_feedback(feedback(query, misses=ratios[arm],
                                          hits=16 - ratios[arm]))
        assert run_query(strategy, agg(10), misses=1, hits=15) == "adaptive:a"
        # Hotspot shift: 'a' degrades badly (latency spike + cold cache).
        for i in range(100, 160):
            query = agg(i)
            strategy.choose(query, [0, 0, 0])
            arm = strategy.decision_label(query).split(":")[1]
            if arm == "a":
                strategy.on_feedback(feedback(query, response=200e-6,
                                              misses=16, hits=0))
            else:
                strategy.on_feedback(feedback(query, response=10e-6,
                                              misses=2, hits=14))
            if strategy.mode == "committed" and strategy.auditions >= 2:
                break
        assert strategy.auditions >= 2
        # Post-shift greedy choice lands on an arm that is not 'a'.
        label = run_query(strategy, agg(500), misses=2, hits=14)
        assert label != "adaptive:a"


class TestExploration:
    def test_epsilon_probes_refresh_other_arms(self):
        strategy, arms = make_strategy(
            epsilon=1.0, epsilon_min=1.0, epsilon_decay=0.0,
        )
        for i in range(6):
            run_query(strategy, agg(i))
        # With epsilon pinned at 1, every committed decision is a probe.
        before = strategy.explorations
        for i in range(10, 20):
            run_query(strategy, agg(i))
        assert strategy.explorations - before == 10

    def test_exploration_rate_decays(self):
        strategy, _ = make_strategy(
            epsilon=0.5, epsilon_min=0.01, epsilon_decay=1.0,
        )
        early = strategy.exploration_rate("traversal")
        for i in range(6):
            run_query(strategy, agg(i))
        for i in range(50):
            run_query(strategy, agg(100 + i))
        assert strategy.exploration_rate("traversal") < early


class TestClusterIntegration:
    @pytest.fixture(scope="class")
    def graph(self):
        return ring_of_cliques(8, 5)

    @pytest.fixture(scope="class")
    def assets(self, graph):
        return GraphAssets(graph)

    def test_adaptive_cluster_run(self, graph, assets):
        config = ClusterConfig(
            num_processors=3,
            num_storage_servers=2,
            routing="adaptive",
            cache_capacity_bytes=1 << 20,
            num_landmarks=8,
            min_separation=2,
            embed_method="lmds",
            adaptive_epoch=8,
        )
        cluster = GRoutingCluster(graph, config, assets=assets)
        queries = [NeighborAggregationQuery(node=n % 40, hops=2)
                   for n in range(120)]
        report = cluster.run(queries)
        assert len(report.records) == 120
        labels = {r.routed_via for r in report.records}
        assert labels <= {"adaptive:hash", "adaptive:landmark",
                          "adaptive:embed"}
        assert len(labels) >= 2  # audition used several arms
        assert all(r.query_class == "traversal" for r in report.records)
        counts = report.per_arm_counts()
        assert sum(counts.values()) == 120

    def test_invalid_adaptive_arm_rejected(self, graph, assets):
        config = ClusterConfig(routing="adaptive",
                               adaptive_arms=("hash", "adaptive"))
        with pytest.raises(ValueError):
            GRoutingCluster(graph, config, assets=assets)

    def test_no_cache_arm_rejected(self, graph, assets):
        # "no_cache" is a cluster mode, not a routing decision: as an arm it
        # would run cached next-ready dispatch under a misleading label.
        config = ClusterConfig(routing="adaptive",
                               adaptive_arms=("no_cache", "embed"))
        with pytest.raises(ValueError):
            GRoutingCluster(graph, config, assets=assets)

    def test_empty_adaptive_arms_rejected(self, graph, assets):
        config = ClusterConfig(routing="adaptive", adaptive_arms=())
        with pytest.raises(ValueError):
            GRoutingCluster(graph, config, assets=assets)
