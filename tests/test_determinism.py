"""Bit-identical replay: the contract the analyzer and sanitizer defend.

Two kinds of check:

* twice-run regression — the same workload through two freshly opened
  services produces byte-for-byte identical reports (per-query timings
  included), for both static (hash) and stateful (adaptive) routing;
* hash-seed regression — the adaptive router's global-best-arm choice
  must not depend on ``PYTHONHASHSEED`` (it once did: a set of class-name
  strings fed float summation in hash order).
"""

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro import ClusterConfig, GraphService
from repro.core import GraphAssets
from repro.datasets import memetracker_like
from repro.workloads import hotspot_workload

REPO_ROOT = Path(__file__).resolve().parents[1]


@pytest.fixture(scope="module")
def workload():
    graph = memetracker_like(scale=0.05, seed=2)
    assets = GraphAssets(graph)
    queries = hotspot_workload(graph, num_hotspots=8, queries_per_hotspot=10,
                               radius=2, hops=2, seed=1, csr=assets.csr_both)
    return graph, assets, queries


def _run_once(graph, assets, queries, routing, **kwargs):
    config = ClusterConfig(routing=routing, num_processors=4,
                           num_storage_servers=2,
                           cache_capacity_bytes=4 << 20, num_landmarks=16,
                           min_separation=2, dim=6, embed_method="lmds",
                           **kwargs)
    with GraphService.open(graph, config, assets=assets) as service:
        with service.session() as session:
            session.submit_many(queries)
            report = session.report()
    return report


def _assert_identical(first, second):
    assert first.makespan == second.makespan
    assert len(first.records) == len(second.records)
    for a, b in zip(first.records, second.records):
        # Full dataclass equality: ids, placement, per-query timings,
        # cache counters — everything a benchmark figure is built from.
        assert a == b


@pytest.mark.parametrize("routing", ["hash", "adaptive"])
def test_twice_run_reports_identical(workload, routing):
    graph, assets, queries = workload
    kwargs = {"adaptive_epoch": 8} if routing == "adaptive" else {}
    first = _run_once(graph, assets, queries, routing, **kwargs)
    second = _run_once(graph, assets, queries, routing, **kwargs)
    _assert_identical(first, second)


def test_twice_run_identical_under_sanitizer(workload, monkeypatch):
    graph, assets, queries = workload
    plain = _run_once(graph, assets, queries, "hash")
    monkeypatch.setenv("REPRO_SANITIZE", "1")
    sanitized = _run_once(graph, assets, queries, "hash")
    _assert_identical(plain, sanitized)


_BEST_ARM_SCRIPT = """
import json, sys
from repro.core.routing.adaptive import AdaptiveRouting

router = AdaptiveRouting.__new__(AdaptiveRouting)
router._arm_names = ["embed", "hash"]
# Crafted so the arm means are float-summation-order sensitive:
# 0.1 + 0.2 + 0.3 is 0.6000000000000001 or 0.6 depending on order, so
# hash's mean either ties embed's exact 0.2 (tie -> embed, listed first)
# or dips below it (-> hash). Summing in set order flips the winner
# across PYTHONHASHSEED values; sorted order cannot.
router._score_ewma = {}
values = {
    "hash": {"pointA": 0.1, "travB": 0.2, "walkC": 0.3},
    "embed": {"pointA": 0.2, "travB": 0.2, "walkC": 0.2},
}
for arm, scores in values.items():
    for cls, score in scores.items():
        router._score_ewma[(cls, arm)] = score
print(json.dumps(router._global_best_arm()))
"""


def test_global_best_arm_independent_of_hash_seed():
    outcomes = set()
    for seed in ("0", "1", "2", "42"):
        env = dict(os.environ, PYTHONHASHSEED=seed,
                   PYTHONPATH=str(REPO_ROOT / "src"))
        out = subprocess.run(
            [sys.executable, "-c", _BEST_ARM_SCRIPT], env=env,
            capture_output=True, text=True, check=True)
        outcomes.add(json.loads(out.stdout))
    assert len(outcomes) == 1
