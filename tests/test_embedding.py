"""Tests for graph embedding and the EMA tracker."""

import numpy as np
import pytest

from repro.embedding import (
    GraphEmbedding,
    ProcessorEMATracker,
    classical_mds,
    embed_landmarks,
    lmds_triangulate,
)
from repro.graph import CSRGraph, ring_of_cliques, watts_strogatz
from repro.landmarks import LandmarkDistances, select_landmarks


@pytest.fixture(scope="module")
def ring_setup():
    graph = ring_of_cliques(8, 5)
    csr = CSRGraph.from_graph(graph, direction="both")
    landmarks = select_landmarks(csr, 8, min_separation=2)
    dists = LandmarkDistances.compute(csr, landmarks)
    return graph, csr, dists


class TestClassicalMds:
    def test_recovers_triangle(self):
        # Equilateral triangle with unit sides (paper Fig 6).
        pair = np.array([[0, 1, 1], [1, 0, 1], [1, 1, 0]], dtype=np.int32)
        coords = classical_mds(pair, 2)
        for i in range(3):
            for j in range(i + 1, 3):
                d = np.linalg.norm(coords[i] - coords[j])
                assert d == pytest.approx(1.0, abs=1e-6)

    def test_recovers_line(self):
        pair = np.array([[0, 1, 2], [1, 0, 1], [2, 1, 0]], dtype=np.int32)
        coords = classical_mds(pair, 1)
        d01 = np.linalg.norm(coords[0] - coords[1])
        d02 = np.linalg.norm(coords[0] - coords[2])
        assert d01 == pytest.approx(1.0, abs=1e-6)
        assert d02 == pytest.approx(2.0, abs=1e-6)

    def test_pads_when_rank_deficient(self):
        pair = np.array([[0, 1], [1, 0]], dtype=np.int32)
        coords = classical_mds(pair, 5)
        assert coords.shape == (2, 5)


class TestEmbedLandmarks:
    def test_improves_or_matches_mds(self, ring_setup):
        _graph, _csr, dists = ring_setup
        pair = dists.pair_matrix()
        target = pair.astype(np.float64)

        def mean_rel_error(coords):
            diff = coords[:, None, :] - coords[None, :, :]
            eu = np.sqrt((diff**2).sum(axis=2))
            mask = ~np.eye(len(coords), dtype=bool)
            return (np.abs(target - eu)[mask] / target[mask]).mean()

        mds = classical_mds(pair, 4)
        refined = embed_landmarks(pair, 4, rounds=2)
        assert mean_rel_error(refined) <= mean_rel_error(mds) + 1e-9

    def test_single_landmark(self):
        coords = embed_landmarks(np.zeros((1, 1), dtype=np.int32), 3)
        assert coords.shape == (1, 3)


class TestLmdsTriangulate:
    def test_places_nodes_near_true_positions(self):
        # Landmarks on a square; a node equidistant from all sits at center.
        landmark_coords = np.array(
            [[0.0, 0.0], [2.0, 0.0], [0.0, 2.0], [2.0, 2.0]]
        )
        d_center = np.sqrt(2.0)
        node_dists = np.array([[d_center], [d_center], [d_center], [d_center]])
        coords = lmds_triangulate(landmark_coords, node_dists)
        assert np.allclose(coords[0], [1.0, 1.0], atol=1e-6)

    def test_handles_unreachable_entries(self):
        landmark_coords = np.array([[0.0, 0.0], [1.0, 0.0], [0.0, 1.0]])
        node_dists = np.array([[1], [-1], [1]], dtype=np.int32)  # -1 unreachable
        coords = lmds_triangulate(landmark_coords, node_dists)
        assert np.isfinite(coords).all()


class TestGraphEmbedding:
    def test_embeds_all_nodes(self, ring_setup):
        _graph, csr, dists = ring_setup
        emb = GraphEmbedding.embed(csr, dim=4, landmark_distances=dists,
                                   nm_iterations=40)
        assert emb.coords.shape == (csr.num_nodes, 4)
        assert np.isfinite(emb.coords).all()

    def test_nearby_nodes_closer_than_far_nodes(self, ring_setup):
        _graph, csr, dists = ring_setup
        emb = GraphEmbedding.embed(csr, dim=6, landmark_distances=dists,
                                   nm_iterations=60)
        # Same-clique distance must typically be below cross-ring distance.
        same = [emb.euclidean(0, i) for i in range(1, 5)]
        across = [emb.euclidean(0, 20 + i) for i in range(5)]
        assert np.mean(same) < np.mean(across)

    def test_simplex_refines_lmds(self, ring_setup):
        _graph, csr, dists = ring_setup
        rng = np.random.default_rng(0)
        pairs = []
        nodes = csr.node_ids
        for _ in range(60):
            a, b = rng.choice(nodes, size=2, replace=False)
            pairs.append((int(a), int(b)))
        lmds = GraphEmbedding.embed(csr, dim=6, landmark_distances=dists,
                                    method="lmds")
        simplex = GraphEmbedding.embed(csr, dim=6, landmark_distances=dists,
                                       method="simplex", nm_iterations=80)
        err_lmds = lmds.relative_errors(csr, pairs).mean()
        err_simplex = simplex.relative_errors(csr, pairs).mean()
        assert err_simplex <= err_lmds * 1.05

    def test_higher_dimensions_reduce_error(self):
        graph = watts_strogatz(300, 6, 0.05, seed=1)
        csr = CSRGraph.from_graph(graph, direction="both")
        landmarks = select_landmarks(csr, 12, min_separation=2)
        dists = LandmarkDistances.compute(csr, landmarks)
        rng = np.random.default_rng(1)
        pairs = [
            tuple(int(x) for x in rng.choice(csr.node_ids, 2, replace=False))
            for _ in range(80)
        ]
        errors = {}
        for dim in (2, 10):
            emb = GraphEmbedding.embed(csr, dim=dim, landmark_distances=dists,
                                       nm_iterations=60)
            errors[dim] = emb.relative_errors(csr, pairs, max_hops=12).mean()
        assert errors[10] < errors[2]

    def test_unknown_method_rejected(self, ring_setup):
        _graph, csr, dists = ring_setup
        with pytest.raises(ValueError):
            GraphEmbedding.embed(csr, method="magic", landmark_distances=dists)

    def test_storage_linear_in_nodes_and_dim(self, ring_setup):
        _graph, csr, dists = ring_setup
        emb = GraphEmbedding.embed(csr, dim=4, landmark_distances=dists,
                                   method="lmds")
        assert emb.storage_bytes() == csr.num_nodes * 4 * 8  # float64

    def test_add_node_places_near_anchor(self, ring_setup):
        _graph, csr, dists = ring_setup
        emb = GraphEmbedding.embed(csr, dim=4, landmark_distances=dists,
                                   method="lmds")
        # New node at distance = (landmark vector of node 0) + 1.
        vec = dists.to_node(csr.index_of(0)).astype(np.float64) + 1.0
        emb.add_node(5555, vec)
        placed = emb.coordinates_of(5555)
        assert placed is not None
        # It should land within a couple of hops' distance of node 0.
        assert np.linalg.norm(placed - emb.coordinates_of(0)) < 4.0

    def test_add_node_duplicate_rejected(self, ring_setup):
        _graph, csr, dists = ring_setup
        emb = GraphEmbedding.embed(csr, dim=3, landmark_distances=dists,
                                   method="lmds")
        with pytest.raises(ValueError):
            emb.add_node(int(csr.node_ids[0]), np.ones(dists.num_landmarks))

    def test_add_node_with_no_information_lands_at_centroid(self, ring_setup):
        _graph, csr, dists = ring_setup
        emb = GraphEmbedding.embed(csr, dim=3, landmark_distances=dists,
                                   method="lmds")
        emb.add_node(7777, np.full(dists.num_landmarks, np.inf))
        assert np.allclose(
            emb.coordinates_of(7777), emb.landmark_coords.mean(axis=0)
        )

    def test_euclidean_unknown_node_raises(self, ring_setup):
        _graph, csr, dists = ring_setup
        emb = GraphEmbedding.embed(csr, dim=3, landmark_distances=dists,
                                   method="lmds")
        with pytest.raises(KeyError):
            emb.euclidean(0, 31337)


class TestProcessorEMATracker:
    def test_update_moves_mean_toward_query(self):
        tracker = ProcessorEMATracker(2, 3, alpha=0.5, seed=0)
        target = np.array([10.0, 10.0, 10.0])
        before = np.linalg.norm(tracker.means[0] - target)
        tracker.update(0, target)
        after = np.linalg.norm(tracker.means[0] - target)
        assert after < before

    def test_alpha_zero_jumps_to_last_query(self):
        tracker = ProcessorEMATracker(1, 2, alpha=0.0, seed=0)
        tracker.update(0, np.array([3.0, 4.0]))
        assert np.allclose(tracker.means[0], [3.0, 4.0])

    def test_alpha_one_never_moves(self):
        tracker = ProcessorEMATracker(1, 2, alpha=1.0, seed=0)
        initial = tracker.means[0].copy()
        tracker.update(0, np.array([100.0, 100.0]))
        assert np.allclose(tracker.means[0], initial)

    def test_distances_shape_and_ordering(self):
        tracker = ProcessorEMATracker(3, 2, alpha=0.5, seed=1)
        tracker.means = np.array([[0.0, 0.0], [5.0, 0.0], [100.0, 0.0]])
        dists = tracker.distances(np.array([1.0, 0.0]))
        assert dists.shape == (3,)
        assert np.argmin(dists) == 0

    def test_invalid_alpha_rejected(self):
        with pytest.raises(ValueError):
            ProcessorEMATracker(2, 2, alpha=1.5)

    def test_for_embedding_initialises_in_bounding_box(self):
        coords = np.array([[0.0, 0.0], [10.0, 5.0], [2.0, 8.0]])
        tracker = ProcessorEMATracker.for_embedding(coords, 4, seed=2)
        assert tracker.means.shape == (4, 2)
        assert (tracker.means[:, 0] >= 0).all() and (tracker.means[:, 0] <= 10).all()
        assert (tracker.means[:, 1] >= 0).all() and (tracker.means[:, 1] <= 8).all()

    def test_deterministic_with_seed(self):
        a = ProcessorEMATracker(3, 4, seed=9)
        b = ProcessorEMATracker(3, 4, seed=9)
        assert np.allclose(a.means, b.means)


class TestRefreshAndClone:
    def _embedding(self):
        csr = CSRGraph.from_graph(ring_of_cliques(6, 5), direction="both")
        return GraphEmbedding.embed(csr, dim=3, num_landmarks=6,
                                    min_separation=1, method="lmds")

    def test_refresh_places_new_node_at_neighbor_centroid(self):
        embedding = self._embedding()
        a = embedding.coordinates_of(0)
        b = embedding.coordinates_of(1)
        embedding.refresh_node(999, [a, b])
        np.testing.assert_allclose(
            embedding.coordinates_of(999), (a + b) / 2.0
        )

    def test_refresh_new_node_without_neighbors_uses_landmark_centroid(self):
        embedding = self._embedding()
        embedding.refresh_node(999, [None, None])
        np.testing.assert_allclose(
            embedding.coordinates_of(999),
            embedding.landmark_coords.mean(axis=0),
        )

    def test_refresh_existing_node_blends(self):
        embedding = self._embedding()
        old = embedding.coordinates_of(0).copy()
        target = embedding.coordinates_of(1)
        embedding.refresh_node(0, [target], blend=0.5)
        np.testing.assert_allclose(
            embedding.coordinates_of(0), 0.5 * old + 0.5 * target
        )
        # blend=0 keeps coordinates untouched.
        frozen = embedding.coordinates_of(0).copy()
        embedding.refresh_node(0, [target], blend=0.0)
        np.testing.assert_allclose(embedding.coordinates_of(0), frozen)

    def test_refresh_existing_node_without_info_keeps_coords(self):
        embedding = self._embedding()
        old = embedding.coordinates_of(0).copy()
        embedding.refresh_node(0, [])
        np.testing.assert_allclose(embedding.coordinates_of(0), old)

    def test_refresh_rejects_bad_blend(self):
        embedding = self._embedding()
        with pytest.raises(ValueError):
            embedding.refresh_node(0, [], blend=1.5)

    def test_clone_is_independent(self):
        embedding = self._embedding()
        copy = embedding.clone()
        old = embedding.coordinates_of(0).copy()
        copy.refresh_node(0, [embedding.coordinates_of(1)], blend=1.0)
        np.testing.assert_allclose(embedding.coordinates_of(0), old)
        copy.refresh_node(777, [old])
        assert copy.knows(777)
        assert not embedding.knows(777)
