"""Tests for the CSR view: cross-checked against pure-Python traversal."""

import pytest

from repro.graph import (
    CSRGraph,
    Graph,
    barabasi_albert,
    bfs_distances,
    erdos_renyi,
    k_hop_neighborhood,
    ring_of_cliques,
)


@pytest.fixture(scope="module")
def random_graph():
    return erdos_renyi(200, 800, seed=42)


class TestConstruction:
    def test_out_direction_row_contents(self):
        g = Graph()
        g.add_edge(0, 1)
        g.add_edge(0, 2)
        g.add_edge(2, 1)
        csr = CSRGraph.from_graph(g, direction="out")
        assert sorted(csr.neighbors_of(csr.index_of(0)).tolist()) == [
            csr.index_of(1),
            csr.index_of(2),
        ]
        assert csr.neighbors_of(csr.index_of(1)).size == 0

    def test_in_direction_row_contents(self):
        g = Graph()
        g.add_edge(0, 1)
        g.add_edge(2, 1)
        csr = CSRGraph.from_graph(g, direction="in")
        row = csr.neighbors_of(csr.index_of(1))
        assert sorted(row.tolist()) == sorted(
            [csr.index_of(0), csr.index_of(2)]
        )

    def test_both_direction_deduplicates(self):
        g = Graph()
        g.add_edge(0, 1)
        g.add_edge(1, 0)
        csr = CSRGraph.from_graph(g, direction="both")
        assert csr.neighbors_of(csr.index_of(0)).tolist() == [csr.index_of(1)]

    def test_noncontiguous_node_ids(self):
        g = Graph()
        g.add_edge(100, 7)
        g.add_edge(7, 55)
        csr = CSRGraph.from_graph(g)
        assert csr.num_nodes == 3
        assert set(csr.node_ids.tolist()) == {7, 55, 100}
        # Compact ids map back consistently.
        for nid in (7, 55, 100):
            assert csr.node_ids[csr.index_of(nid)] == nid

    def test_bad_direction_rejected(self):
        with pytest.raises(ValueError):
            CSRGraph.from_graph(Graph(), direction="up")

    def test_degrees_match_graph(self, random_graph):
        csr = CSRGraph.from_graph(random_graph, direction="out")
        degrees = csr.degrees()
        for node in random_graph.nodes():
            assert degrees[csr.index_of(node)] == random_graph.out_degree(node)


class TestBfs:
    def test_matches_python_bfs_on_random_graph(self, random_graph):
        csr = CSRGraph.from_graph(random_graph, direction="both")
        for source in (0, 17, 123):
            expected = bfs_distances(random_graph, source, direction="both")
            dist = csr.bfs_distances([csr.index_of(source)])
            for i, nid in enumerate(csr.node_ids):
                want = expected.get(int(nid), -1)
                assert dist[i] == want

    def test_max_hops_cuts_off(self, random_graph):
        csr = CSRGraph.from_graph(random_graph, direction="both")
        dist = csr.bfs_distances([0], max_hops=2)
        assert dist.max() <= 2

    def test_multi_source(self):
        g = ring_of_cliques(4, 4)
        csr = CSRGraph.from_graph(g, direction="both")
        sources = [csr.index_of(0), csr.index_of(8)]
        dist = csr.bfs_distances(sources)
        assert dist[csr.index_of(0)] == 0
        assert dist[csr.index_of(8)] == 0
        # Every node reached (ring is connected).
        assert (dist >= 0).all()

    def test_empty_sources(self):
        g = ring_of_cliques(2, 3)
        csr = CSRGraph.from_graph(g)
        dist = csr.bfs_distances([])
        assert (dist == -1).all()

    def test_unreachable_marked(self):
        g = Graph()
        g.add_edge(0, 1)
        g.add_node(9)
        csr = CSRGraph.from_graph(g, direction="both")
        dist = csr.bfs_distances([csr.index_of(0)])
        assert dist[csr.index_of(9)] == -1

    def test_directed_bfs_respects_direction(self):
        g = Graph()
        g.add_edge(0, 1)
        g.add_edge(1, 2)
        csr = CSRGraph.from_graph(g, direction="out")
        dist = csr.bfs_distances([csr.index_of(2)])
        assert dist[csr.index_of(0)] == -1


class TestFrontiers:
    def test_k_hop_frontiers_match_neighborhood(self, random_graph):
        csr = CSRGraph.from_graph(random_graph, direction="both")
        source = 5
        frontiers = csr.k_hop_frontiers(csr.index_of(source), 2)
        got = {
            int(csr.node_ids[i]) for layer in frontiers for i in layer
        }
        assert got == k_hop_neighborhood(random_graph, source, 2)

    def test_frontier_layers_disjoint(self, random_graph):
        csr = CSRGraph.from_graph(random_graph, direction="both")
        frontiers = csr.k_hop_frontiers(3, 3)
        seen = set()
        for layer in frontiers:
            layer_set = set(layer.tolist())
            assert not (layer_set & seen)
            seen |= layer_set

    def test_neighborhood_size(self, random_graph):
        csr = CSRGraph.from_graph(random_graph, direction="both")
        for source in (0, 9, 42):
            expected = len(k_hop_neighborhood(random_graph, source, 2))
            assert csr.neighborhood_size(csr.index_of(source), 2) == expected

    def test_on_scale_free_graph(self):
        g = barabasi_albert(300, 3, seed=1)
        csr = CSRGraph.from_graph(g, direction="both")
        expected = len(k_hop_neighborhood(g, 0, 2))
        assert csr.neighborhood_size(csr.index_of(0), 2) == expected
