"""Property-based scheduler-equivalence suite: heap vs calendar kernels.

The calendar-queue/cohort kernel must dispatch *exactly* the heap
kernel's ``(time, sequence)`` order (ROADMAP invariant 2).  These tests
generate random event programs — mixed delays, same-instant ties,
zero-delay cascades, failures/cancellations, AllOf/AnyOf fan-ins — and
replay each program once per kernel.  The program records its own resume
trace (process id, step, simulated time, outcome), so equivalence needs
no kernel instrumentation: identical traces means identical dispatch
order wherever order is observable.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import Environment, SimulationError

# ---------------------------------------------------------------------------
# Random event programs
#
# A program is data (picked by hypothesis), then executed identically on
# each kernel:
#   * `triggers[eid] = (delay, fail?)` — one driver process per shared
#     event triggers it at an absolute time (ties arise from equal
#     delays; fail? exercises exception propagation / cancellation).
#   * `procs[pid] = [step, ...]` — waiter processes run steps in order:
#       ("t", d)        yield env.timeout(d)          (pooled path)
#       ("tv", d)       yield env.timeout(d, value=…) (unpooled path)
#       ("w", eid)      yield shared event eid (catching failures)
#       ("all", [eid…]) yield env.all_of([...])       (catching failures)
#       ("any", [eid…]) yield env.any_of([...])
#       ("stop",)       return early — later steps are dead code, so
#                       whatever the process was about to wait on is
#                       abandoned (cancellation: losers still dispatch)
# ---------------------------------------------------------------------------

#: Small delay palette ⇒ many exact-tie cohorts and zero-delay cascades.
_DELAYS = st.sampled_from([0.0, 0.0, 0.5, 1.0, 1.0, 2.0, 3.5])

_N_EVENTS = 6

_STEPS = st.one_of(
    st.tuples(st.just("t"), _DELAYS),
    st.tuples(st.just("tv"), _DELAYS),
    st.tuples(st.just("w"), st.integers(0, _N_EVENTS - 1)),
    st.tuples(st.just("all"),
              st.lists(st.integers(0, _N_EVENTS - 1), min_size=1,
                       max_size=3)),
    st.tuples(st.just("any"),
              st.lists(st.integers(0, _N_EVENTS - 1), min_size=1,
                       max_size=3)),
    st.tuples(st.just("stop")),
)

_PROGRAMS = st.fixed_dictionaries({
    "triggers": st.lists(
        st.tuples(_DELAYS, st.booleans()),
        min_size=_N_EVENTS, max_size=_N_EVENTS),
    "procs": st.lists(
        st.lists(_STEPS, min_size=1, max_size=6),
        min_size=1, max_size=6),
})


def _run_program(program, kernel, until=None):
    """Execute ``program`` on ``kernel``; return its observable trace."""
    env = Environment(kernel=kernel)
    trace = []
    shared = [env.event() for _ in range(_N_EVENTS)]

    def driver(eid, delay, fail):
        yield env.timeout(delay)
        event = shared[eid]
        trace.append(("drive", eid, env.now))
        if fail:
            event.fail(RuntimeError(f"ev{eid}"))
        else:
            event.succeed(("ok", eid))

    def waiter(pid, steps):
        for idx, step in enumerate(steps):
            kind = step[0]
            try:
                if kind == "t":
                    yield env.timeout(step[1])
                    outcome = "t"
                elif kind == "tv":
                    outcome = yield env.timeout(step[1], value=("v", idx))
                elif kind == "w":
                    outcome = yield shared[step[1]]
                elif kind == "all":
                    outcome = yield env.all_of(
                        [shared[e] for e in step[1]])
                elif kind == "any":
                    outcome = yield env.any_of(
                        [shared[e] for e in step[1]])
                else:  # "stop": abandon the rest of the program
                    trace.append((pid, idx, env.now, "stop"))
                    return
            except RuntimeError as exc:
                outcome = ("caught", str(exc))
            trace.append((pid, idx, env.now, outcome))

    for eid, (delay, fail) in enumerate(program["triggers"]):
        env.process(driver(eid, delay, fail))
    for pid, steps in enumerate(program["procs"]):
        env.process(waiter(pid, steps))

    env.run(until=until)
    trace.append(("end", env.now, env.events_processed))
    return trace


def _native_available() -> bool:
    return Environment(kernel="native").kernel == "native"


class TestKernelEquivalence:
    @settings(max_examples=200, deadline=None)
    @given(program=_PROGRAMS)
    def test_trace_identical_run_to_exhaustion(self, program):
        assert _run_program(program, "heap") \
            == _run_program(program, "calendar")

    @settings(max_examples=100, deadline=None)
    @given(program=_PROGRAMS, limit=st.sampled_from([0.0, 0.5, 1.0, 2.5]))
    def test_trace_identical_run_until_time(self, program, limit):
        assert _run_program(program, "heap", until=limit) \
            == _run_program(program, "calendar", until=limit)

    @settings(max_examples=100, deadline=None)
    @given(program=_PROGRAMS, limit=st.sampled_from([None, 0.5, 2.5]))
    def test_native_trace_identical(self, program, limit):
        if not _native_available():
            pytest.skip("native kernel unavailable on this machine")
        assert _run_program(program, "heap", until=limit) \
            == _run_program(program, "native", until=limit)

    @settings(max_examples=100, deadline=None)
    @given(program=_PROGRAMS)
    def test_trace_identical_under_sanitize(self, program):
        # Sanitize retires pooled timeouts and tallies ties but must not
        # change results; failures parked on shared events are always
        # consumed by a driver trace entry, so no unhandled-failure trap
        # fires... unless a generated program genuinely orphans a failed
        # event — then *both* kernels must raise it identically.
        def run(kernel):
            env_trace = None
            try:
                env_trace = _sanitized_trace(program, kernel)
                return ("ok", env_trace)
            except RuntimeError as exc:
                return ("raised", str(exc))

        assert run("heap") == run("calendar")


def _sanitized_trace(program, kernel):
    # Single-run variant of _run_program with sanitize=True.
    env = Environment(kernel=kernel, sanitize=True)
    trace = []
    shared = [env.event() for _ in range(_N_EVENTS)]

    def driver(eid, delay, fail):
        yield env.timeout(delay)
        trace.append(("drive", eid, env.now))
        if fail:
            shared[eid].fail(RuntimeError(f"ev{eid}"))
        else:
            shared[eid].succeed(("ok", eid))

    def waiter(pid, steps):
        for idx, step in enumerate(steps):
            kind = step[0]
            try:
                if kind == "t":
                    yield env.timeout(step[1])
                    outcome = "t"
                elif kind == "tv":
                    outcome = yield env.timeout(step[1], value=("v", idx))
                elif kind == "w":
                    outcome = yield shared[step[1]]
                elif kind == "all":
                    outcome = yield env.all_of([shared[e] for e in step[1]])
                elif kind == "any":
                    outcome = yield env.any_of([shared[e] for e in step[1]])
                else:
                    trace.append((pid, idx, env.now, "stop"))
                    return
            except RuntimeError as exc:
                outcome = ("caught", str(exc))
            trace.append((pid, idx, env.now, outcome))

    for eid, (delay, fail) in enumerate(program["triggers"]):
        env.process(driver(eid, delay, fail))
    for pid, steps in enumerate(program["procs"]):
        env.process(waiter(pid, steps))
    env.run()
    trace.append(("end", env.now, env.events_processed))
    return trace


class TestCalendarInternals:
    """Directed edge cases for the calendar structures themselves."""

    def test_far_future_overflow_and_window_reseed(self):
        # Deltas establish a small bucket width, then a far-future event
        # forces the overflow path and several window re-seeds.
        env = Environment(kernel="calendar")
        log = []

        def ticker():
            for _ in range(2000):
                yield env.timeout(1.0)

        def far():
            yield env.timeout(1700.5)
            log.append(env.now)

        env.process(ticker())
        env.process(far())
        env.run()
        assert log == [1700.5]
        assert env.now == 2000.0

    def test_interleaved_widths_and_ties(self):
        env_h = Environment(kernel="heap")
        env_c = Environment(kernel="calendar")

        def program(env, out):
            def proc(scale):
                for i in range(300):
                    yield env.timeout((i % 7) * scale)
                    out.append((scale, env.now))
            for scale in (0.0, 0.25, 1.0, 30.0):
                env.process(proc(scale))

        out_h, out_c = [], []
        program(env_h, out_h)
        program(env_c, out_c)
        env_h.run()
        env_c.run()
        assert out_h == out_c
        assert env_h.events_processed == env_c.events_processed

    def test_insert_behind_cursor_is_not_lost(self):
        # A long-idle environment whose window was seeded far ahead must
        # still serve newly scheduled near-term events first.
        env = Environment(kernel="calendar")
        order = []

        def late_sleeper():
            yield env.timeout(100.0)
            order.append(("late", env.now))

        def pacer():
            for _ in range(10):
                yield env.timeout(3.0)

        env.process(late_sleeper())
        env.process(pacer())
        env.run(until=40.0)
        # Window is now established around the t=100 overflow event.

        def sprinter():
            yield env.timeout(1.0)
            order.append(("sprint", env.now))

        env.process(sprinter())
        env.run()
        assert order == [("sprint", 41.0), ("late", 100.0)]

    def test_peek_does_not_dispatch_or_advance(self):
        env = Environment(kernel="calendar")
        fired = []

        def proc():
            yield env.timeout(2.0)
            fired.append(env.now)

        env.process(proc())
        env.run(until=1.0)
        assert env.peek() == 2.0
        assert env.now == 1.0
        assert not fired
        # An event scheduled *after* the peek, at an earlier time than
        # the peeked cohort, still dispatches first.
        order = []

        def early():
            yield env.timeout(0.5)
            order.append("early")

        def tail():
            yield env.timeout(2.0)
            order.append("tail")

        env.process(early())
        env.process(tail())
        env.run()
        assert order == ["early", "tail"]
        assert fired == [2.0]

    def test_run_until_limit_does_not_stage_past_limit(self):
        env = Environment(kernel="calendar")
        order = []

        def sleeper(tag, delay):
            yield env.timeout(delay)
            order.append((tag, env.now))

        env.process(sleeper("far", 10.0))
        env.run(until=5.0)
        # Schedule something earlier than the already-pending t=10 event.
        env.process(sleeper("near", 1.0))
        env.run()
        assert order == [("near", 6.0), ("far", 10.0)]

    def test_lifo_tie_break_forces_heap_kernel(self):
        env = Environment(tie_break="lifo", kernel="calendar")
        assert env.kernel == "heap"
        assert env.kernel_fallback_reason == "tie_break='lifo' requires heap"

    def test_unknown_kernel_rejected(self):
        with pytest.raises(SimulationError):
            Environment(kernel="quantum")

    def test_kernel_env_var_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_KERNEL", "heap")
        assert Environment().kernel == "heap"
        monkeypatch.delenv("REPRO_KERNEL")
        assert Environment().kernel == "calendar"
