"""Tests for landmark selection, distances, assignment and the index."""

import numpy as np
import pytest

from repro.graph import CSRGraph, Graph, barabasi_albert, ring_of_cliques
from repro.graph.traversal import bfs_distances
from repro.landmarks import (
    LandmarkDistances,
    LandmarkIndex,
    UNREACHABLE,
    assign_landmarks_to_processors,
    node_processor_distances,
    select_landmarks,
)


@pytest.fixture(scope="module")
def clique_ring():
    graph = ring_of_cliques(6, 6)
    csr = CSRGraph.from_graph(graph, direction="both")
    return graph, csr


@pytest.fixture(scope="module")
def scale_free():
    graph = barabasi_albert(400, 3, seed=2)
    csr = CSRGraph.from_graph(graph, direction="both")
    return graph, csr


class TestSelection:
    def test_selects_requested_count(self, scale_free):
        _graph, csr = scale_free
        landmarks = select_landmarks(csr, 10, min_separation=2)
        assert len(landmarks) == 10

    def test_landmarks_respect_separation(self, scale_free):
        graph, csr = scale_free
        separation = 3
        landmarks = select_landmarks(csr, 8, min_separation=separation)
        ids = [int(csr.node_ids[l]) for l in landmarks]
        for i, a in enumerate(ids):
            dist = bfs_distances(graph, a, max_hops=separation - 1)
            for b in ids[i + 1:]:
                assert b not in dist, f"{a} and {b} closer than {separation}"

    def test_prefers_high_degree(self, scale_free):
        _graph, csr = scale_free
        landmarks = select_landmarks(csr, 5, min_separation=1)
        degrees = csr.degrees()
        # With separation 1 nothing is discarded: exactly the top-5 degrees.
        top5 = set(np.argsort(-degrees, kind="stable")[:5].tolist())
        assert set(landmarks) == top5

    def test_returns_fewer_when_exhausted(self, clique_ring):
        _graph, csr = clique_ring
        # With a huge separation the whole ring supports only ~1-2 landmarks.
        landmarks = select_landmarks(csr, 30, min_separation=50)
        assert 1 <= len(landmarks) < 30

    def test_isolated_nodes_never_selected(self):
        g = Graph()
        g.add_edge(0, 1)
        g.add_node(99)
        csr = CSRGraph.from_graph(g, direction="both")
        landmarks = select_landmarks(csr, 5, min_separation=1)
        assert csr.index_of(99) not in landmarks

    def test_bad_parameters(self, clique_ring):
        _graph, csr = clique_ring
        with pytest.raises(ValueError):
            select_landmarks(csr, 0)
        with pytest.raises(ValueError):
            select_landmarks(csr, 3, min_separation=0)


class TestLandmarkDistances:
    def test_matrix_matches_python_bfs(self, clique_ring):
        graph, csr = clique_ring
        landmarks = select_landmarks(csr, 4, min_separation=2)
        table = LandmarkDistances.compute(csr, landmarks)
        for row, landmark in enumerate(landmarks):
            source = int(csr.node_ids[landmark])
            expected = bfs_distances(graph, source, direction="both")
            for i, nid in enumerate(csr.node_ids):
                assert table.matrix[row, i] == expected.get(int(nid), -1)

    def test_pair_matrix_diagonal_zero(self, clique_ring):
        _graph, csr = clique_ring
        landmarks = select_landmarks(csr, 4, min_separation=2)
        table = LandmarkDistances.compute(csr, landmarks)
        assert (np.diag(table.pair_matrix()) == 0).all()

    def test_triangle_bounds_hold(self, scale_free):
        graph, csr = scale_free
        landmarks = select_landmarks(csr, 6, min_separation=2)
        table = LandmarkDistances.compute(csr, landmarks)
        rng = np.random.default_rng(0)
        for _ in range(30):
            u, v = rng.integers(0, csr.num_nodes, size=2)
            if u == v:
                continue
            lower, upper = table.triangle_bounds(int(u), int(v))
            true = bfs_distances(
                graph, int(csr.node_ids[u]), direction="both"
            ).get(int(csr.node_ids[v]))
            if true is None:
                continue
            assert lower <= true <= upper

    def test_storage_bytes_linear_in_nodes(self, scale_free):
        _graph, csr = scale_free
        landmarks = select_landmarks(csr, 4, min_separation=2)
        table = LandmarkDistances.compute(csr, landmarks)
        assert table.storage_bytes() == 4 * csr.num_nodes * 4  # int32

    def test_row_count_mismatch_rejected(self):
        with pytest.raises(ValueError):
            LandmarkDistances([0, 1], np.zeros((3, 5), dtype=np.int32))


class TestAssignment:
    def test_every_landmark_assigned_once(self):
        rng = np.random.default_rng(1)
        pair = rng.integers(1, 10, size=(12, 12))
        pair = (pair + pair.T) // 2
        np.fill_diagonal(pair, 0)
        groups = assign_landmarks_to_processors(pair, 4)
        flat = [l for g in groups for l in g]
        assert sorted(flat) == list(range(12))

    def test_first_two_pivots_are_farthest_pair(self):
        pair = np.array(
            [
                [0, 1, 9, 2],
                [1, 0, 3, 2],
                [9, 3, 0, 4],
                [2, 2, 4, 0],
            ]
        )
        groups = assign_landmarks_to_processors(pair, 2)
        pivots = {groups[0][0], groups[1][0]}
        assert pivots == {0, 2}

    def test_more_processors_than_landmarks(self):
        pair = np.array([[0, 2], [2, 0]])
        groups = assign_landmarks_to_processors(pair, 5)
        assert len(groups) == 5
        assert sum(len(g) for g in groups) == 2
        assert groups[2] == [] and groups[4] == []

    def test_single_landmark(self):
        groups = assign_landmarks_to_processors(np.zeros((1, 1)), 3)
        assert groups[0] == [0]

    def test_unreachable_pairs_attract_pivots(self):
        # Landmarks 0-1 connected; landmark 2 in another component.
        pair = np.array(
            [
                [0, 1, UNREACHABLE],
                [1, 0, UNREACHABLE],
                [UNREACHABLE, UNREACHABLE, 0],
            ]
        )
        groups = assign_landmarks_to_processors(pair, 2)
        # The isolated landmark must be a pivot (it is "farthest").
        pivots = {g[0] for g in groups if g}
        assert 2 in pivots

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            assign_landmarks_to_processors(np.zeros((2, 2)), 0)
        with pytest.raises(ValueError):
            assign_landmarks_to_processors(np.zeros((0, 0)), 2)
        with pytest.raises(ValueError):
            assign_landmarks_to_processors(np.zeros((2, 3)), 2)

    def test_node_processor_distances_min_over_group(self):
        matrix = np.array(
            [
                [0, 1, 2],
                [5, 0, 1],
                [3, 3, 0],
            ],
            dtype=np.int32,
        )
        groups = [[0, 2], [1]]
        table = node_processor_distances(matrix, groups)
        assert table.shape == (3, 2)
        assert table[0, 0] == 0  # min(matrix[0,0], matrix[2,0])
        assert table[0, 1] == 5
        assert table[2, 0] == 0  # min(2, 0)

    def test_node_processor_distances_empty_group_inf(self):
        matrix = np.array([[0, 1]], dtype=np.int32)
        table = node_processor_distances(matrix, [[0], []])
        assert np.isinf(table[:, 1]).all()

    def test_unreachable_becomes_inf(self):
        matrix = np.array([[UNREACHABLE, 2]], dtype=np.int32)
        table = node_processor_distances(matrix, [[0]])
        assert np.isinf(table[0, 0])
        assert table[1, 0] == 2


class TestLandmarkIndex:
    def test_build_produces_table_for_all_nodes(self, clique_ring):
        graph, _csr = clique_ring
        index = LandmarkIndex.build(graph, num_processors=3, num_landmarks=6,
                                    min_separation=2)
        for node in graph.nodes():
            dists = index.processor_distances(node)
            assert dists is not None
            assert dists.shape == (3,)
            assert np.isfinite(dists).any()

    def test_nearby_nodes_prefer_same_processor(self, clique_ring):
        graph, _csr = clique_ring
        index = LandmarkIndex.build(graph, num_processors=3, num_landmarks=6,
                                    min_separation=2)
        # Nodes of one clique should mostly agree on their best processor.
        agreements = 0
        for clique in range(6):
            base = clique * 6
            choices = {
                int(np.argmin(index.processor_distances(base + i)))
                for i in range(6)
            }
            if len(choices) == 1:
                agreements += 1
        assert agreements >= 4  # most cliques route as a unit

    def test_unknown_node_returns_none(self, clique_ring):
        graph, _csr = clique_ring
        index = LandmarkIndex.build(graph, num_processors=2, num_landmarks=4,
                                    min_separation=2)
        assert index.processor_distances(10_000) is None
        assert not index.knows(10_000)

    def test_add_node_uses_neighbor_relaxation(self, clique_ring):
        graph, _csr = clique_ring
        index = LandmarkIndex.build(graph, num_processors=3, num_landmarks=6,
                                    min_separation=2)
        neighbor = 0
        new_node = 999
        index.add_node(new_node, [neighbor])
        new_vec = index.landmark_vector(new_node)
        old_vec = index.landmark_vector(neighbor)
        assert np.allclose(new_vec, old_vec + 1.0)
        # Table row is consistent with the vector.
        assert index.processor_distances(new_node) is not None

    def test_add_node_without_known_neighbors_is_unroutable(self, clique_ring):
        graph, _csr = clique_ring
        index = LandmarkIndex.build(graph, num_processors=2, num_landmarks=4,
                                    min_separation=2)
        index.add_node(777, [111111])
        assert np.isinf(index.processor_distances(777)).all()

    def test_add_duplicate_node_rejected(self, clique_ring):
        graph, _csr = clique_ring
        index = LandmarkIndex.build(graph, num_processors=2, num_landmarks=4,
                                    min_separation=2)
        with pytest.raises(ValueError):
            index.add_node(0, [1])

    def test_update_edge_improves_distances(self):
        # Path graph: adding a shortcut edge shrinks landmark distances.
        g = Graph()
        for u in range(11):
            g.add_edge(u, u + 1)
            g.add_edge(u + 1, u)
        index = LandmarkIndex.build(g, num_processors=2, num_landmarks=2,
                                    min_separation=2)
        far_node = 11
        before = index.landmark_vector(far_node).copy()
        g.add_edge(0, 10)
        g.add_edge(10, 0)
        index.update_edge(g, 0, 10, added=True)
        after = index.landmark_vector(far_node)
        assert (after <= before).all()
        assert (after < before).any()

    def test_storage_bytes_counts_table(self, clique_ring):
        graph, _csr = clique_ring
        index = LandmarkIndex.build(graph, num_processors=4, num_landmarks=6,
                                    min_separation=2)
        assert index.storage_bytes() == graph.num_nodes * 4 * 4  # float32 x P


class TestRefreshAndClone:
    def _path_graph(self, n=12):
        g = Graph()
        for u in range(n - 1):
            g.add_edge(u, u + 1)
            g.add_edge(u + 1, u)
        return g

    def test_refresh_nodes_recomputes_changed_region(self):
        g = self._path_graph()
        index = LandmarkIndex.build(g, num_processors=2, num_landmarks=2,
                                    min_separation=2)
        far = 11
        before = index.landmark_vector(far).copy()
        g.add_edge(0, 11)
        g.add_edge(11, 0)
        assert index.refresh_nodes(g, [0, 11]) == 2
        after = index.landmark_vector(far)
        assert (after <= before).all()
        assert (after < before).any()

    def test_refresh_nodes_handles_new_node_chains(self):
        # A new node whose only neighbor is itself new resolves on the
        # second relaxation pass.
        g = self._path_graph()
        index = LandmarkIndex.build(g, num_processors=2, num_landmarks=2,
                                    min_separation=2)
        g.add_edge(100, 0)
        g.add_edge(101, 100)
        index.refresh_nodes(g, [100, 101])
        v0 = index.landmark_vector(0)
        v100 = index.landmark_vector(100)
        v101 = index.landmark_vector(101)
        finite = np.isfinite(v0)
        assert np.allclose(v100[finite], v0[finite] + 1.0)
        assert np.allclose(v101[finite], v0[finite] + 2.0)

    def test_refresh_keeps_landmark_self_distance_zero(self):
        g = self._path_graph()
        index = LandmarkIndex.build(g, num_processors=2, num_landmarks=2,
                                    min_separation=2)
        landmark = index.landmark_node_ids[0]
        row = index.landmark_node_ids.index(landmark)
        g.add_edge(landmark, 200)
        index.refresh_nodes(g, [landmark, 200])
        assert index.landmark_vector(landmark)[row] == 0.0

    def test_refresh_preserves_vector_when_no_information(self):
        g = self._path_graph()
        index = LandmarkIndex.build(g, num_processors=2, num_landmarks=2,
                                    min_separation=2)
        before = index.landmark_vector(5).copy()
        # Isolate node 5's neighbors from the index's point of view by
        # refreshing it against unknown-only neighbors: simulate by a
        # detached pair of brand-new nodes.
        g.add_edge(300, 301)
        index.refresh_nodes(g, [300, 301])
        # 300/301 have no indexed neighbor: all-inf relaxation; new nodes
        # still get indexed (as unreachable), old nodes keep information.
        assert index.knows(300) and index.knows(301)
        assert np.array_equal(index.landmark_vector(5), before)

    def test_refresh_skips_nodes_missing_from_graph(self):
        g = self._path_graph()
        index = LandmarkIndex.build(g, num_processors=2, num_landmarks=2,
                                    min_separation=2)
        assert index.refresh_nodes(g, [99999]) == 0

    def test_clone_is_independent(self):
        g = self._path_graph()
        index = LandmarkIndex.build(g, num_processors=2, num_landmarks=2,
                                    min_separation=2)
        copy = index.clone()
        g.add_edge(500, 0)
        copy.refresh_nodes(g, [500])
        assert copy.knows(500)
        assert not index.knows(500)
        g.add_edge(0, 11)
        g.add_edge(11, 0)
        before = index.landmark_vector(11).copy()
        copy.refresh_nodes(g, [0, 11])
        assert np.array_equal(index.landmark_vector(11), before)
        assert copy.processor_distances(500) is not None
