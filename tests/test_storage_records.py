"""Adjacency-record codec tests."""

import pytest

from repro.graph import Graph
from repro.storage import AdjacencyRecord, graph_to_records, record_for_node


@pytest.fixture
def knowledge_graph():
    """The paper's Figure 3 example graph (Jerry Yang / Yahoo!)."""
    g = Graph()
    g.add_node(0, label="Jerry Yang")
    g.add_node(1, label="Yahoo!")
    g.add_node(2, label="Stanford")
    g.add_node(3, label="Sunnyvale")
    g.add_node(4, label="California")
    g.add_edge(0, 1, label="founded")
    g.add_edge(0, 2, label="education")
    g.add_edge(0, 3, label="places lived")
    g.add_edge(1, 3, label="headquarters in")
    g.add_edge(3, 4, label="part of")
    return g


class TestRecordViews:
    def test_out_and_in_neighbors(self, knowledge_graph):
        record = record_for_node(knowledge_graph, 3)
        assert sorted(record.out_neighbors()) == [4]
        assert sorted(record.in_neighbors()) == [0, 1]

    def test_bidirected_neighbors_deduplicated(self):
        record = AdjacencyRecord(0, out_edges=[(1, None)], in_edges=[(1, None), (2, None)])
        assert record.neighbors() == [1, 2]

    def test_degree_counts_both_directions(self, knowledge_graph):
        record = record_for_node(knowledge_graph, 3)
        assert record.degree == 3


class TestCodec:
    def test_round_trip_plain(self):
        record = AdjacencyRecord(7, out_edges=[(1, None), (2, None)], in_edges=[(3, None)])
        decoded = AdjacencyRecord.decode(record.encode())
        assert decoded == record

    def test_round_trip_with_labels(self, knowledge_graph):
        record = record_for_node(knowledge_graph, 0)
        decoded = AdjacencyRecord.decode(record.encode())
        assert decoded == record
        assert decoded.node_label == "Jerry Yang"
        labels = dict(decoded.out_edges)
        assert labels[1] == "founded"

    def test_round_trip_unicode_labels(self):
        record = AdjacencyRecord(1, out_edges=[(2, "相互リンク")], node_label="ノード")
        assert AdjacencyRecord.decode(record.encode()) == record

    def test_round_trip_empty(self):
        record = AdjacencyRecord(42)
        decoded = AdjacencyRecord.decode(record.encode())
        assert decoded == record
        assert decoded.degree == 0

    def test_size_bytes_matches_encoding(self, knowledge_graph):
        for node in knowledge_graph.nodes():
            record = record_for_node(knowledge_graph, node)
            assert record.size_bytes() == len(record.encode())

    def test_size_grows_with_degree(self):
        small = AdjacencyRecord(0, out_edges=[(1, None)])
        large = AdjacencyRecord(0, out_edges=[(i, None) for i in range(100)])
        assert large.size_bytes() > small.size_bytes()

    def test_negative_node_ids(self):
        record = AdjacencyRecord(-5, out_edges=[(-1, None)])
        assert AdjacencyRecord.decode(record.encode()) == record


class TestGraphToRecords:
    def test_one_record_per_node(self, knowledge_graph):
        records = list(graph_to_records(knowledge_graph))
        assert len(records) == knowledge_graph.num_nodes
        assert {r.node_id for r in records} == set(knowledge_graph.nodes())

    def test_every_edge_appears_twice(self, knowledge_graph):
        # Each directed edge appears once as out-edge, once as in-edge.
        records = {r.node_id: r for r in graph_to_records(knowledge_graph)}
        out_total = sum(len(r.out_edges) for r in records.values())
        in_total = sum(len(r.in_edges) for r in records.values())
        assert out_total == knowledge_graph.num_edges
        assert in_total == knowledge_graph.num_edges
