"""Storage server and tier tests on the simulation kernel."""

import pytest

from repro.costs import StorageServiceModel
from repro.graph import erdos_renyi, ring_of_cliques
from repro.sim import Environment
from repro.storage import (
    StorageServer,
    StorageServerDown,
    StorageTier,
    modulo_partitioner,
)
from repro.storage.records import record_for_node


@pytest.fixture
def env():
    return Environment()


@pytest.fixture
def loaded_tier(env):
    tier = StorageTier(env, num_servers=3, partitioner=modulo_partitioner)
    graph = ring_of_cliques(4, 5)
    tier.load_graph(graph)
    return tier, graph


class TestStorageServer:
    def test_multiget_returns_values_and_takes_time(self, env):
        model = StorageServiceModel(per_request=1e-6, per_key=1e-6, per_byte=0)
        server = StorageServer(env, 0, model)
        server.load(1, b"abc")
        server.load(2, b"de")

        proc = env.process(server.multiget_process([1, 2]))
        values = env.run(until=proc)
        assert values == {1: b"abc", 2: b"de"}
        assert env.now == pytest.approx(3e-6)  # 1 request + 2 keys

    def test_requests_queue_fifo(self, env):
        model = StorageServiceModel(per_request=10e-6, per_key=0, per_byte=0)
        server = StorageServer(env, 0, model)
        server.load(1, b"x")
        finish_times = []

        def client(name):
            yield env.process(server.multiget_process([1]))
            finish_times.append((name, env.now))

        env.process(client("a"))
        env.process(client("b"))
        env.run()
        assert finish_times == [
            ("a", pytest.approx(10e-6)),
            ("b", pytest.approx(20e-6)),
        ]

    def test_pipeline_width_allows_parallel_service(self, env):
        model = StorageServiceModel(per_request=10e-6, per_key=0, per_byte=0)
        server = StorageServer(env, 0, model, pipeline_width=2)
        server.load(1, b"x")

        def client():
            yield env.process(server.multiget_process([1]))

        env.process(client())
        env.process(client())
        env.run()
        assert env.now == pytest.approx(10e-6)  # both served concurrently

    def test_failed_server_raises(self, env):
        server = StorageServer(env, 0, StorageServiceModel())
        server.load(1, b"x")
        server.fail()

        def client(caught):
            try:
                yield env.process(server.multiget_process([1]))
            except StorageServerDown:
                caught.append(True)

        caught = []
        env.process(client(caught))
        env.run()
        assert caught == [True]

    def test_recovered_server_serves_again(self, env):
        server = StorageServer(env, 0, StorageServiceModel())
        server.load(1, b"x")
        server.fail()
        server.recover()
        proc = env.process(server.multiget_process([1]))
        assert env.run(until=proc) == {1: b"x"}

    def test_put_process_stores_value(self, env):
        server = StorageServer(env, 0, StorageServiceModel())
        proc = env.process(server.put_process(5, b"val"))
        env.run(until=proc)
        assert server.store.get(5) == b"val"

    def test_counters(self, env):
        server = StorageServer(env, 0, StorageServiceModel())
        server.load(1, b"abc")
        proc = env.process(server.multiget_process([1]))
        env.run(until=proc)
        assert server.requests_served == 1
        assert server.keys_served == 1
        assert server.bytes_served == 3


class TestStorageTier:
    def test_rejects_zero_servers(self, env):
        with pytest.raises(ValueError):
            StorageTier(env, num_servers=0)

    def test_modulo_partitioner_places_predictably(self, loaded_tier):
        tier, _graph = loaded_tier
        assert tier.locate(0) is tier.servers[0]
        assert tier.locate(4) is tier.servers[1]
        assert tier.locate(5) is tier.servers[2]

    def test_load_graph_places_every_node(self, loaded_tier):
        tier, graph = loaded_tier
        assert sum(tier.load_distribution()) == graph.num_nodes

    def test_murmur_partitioning_is_balanced(self, env):
        tier = StorageTier(env, num_servers=4)
        graph = erdos_renyi(2000, 4000, seed=1)
        tier.load_graph(graph)
        counts = tier.load_distribution()
        assert min(counts) > 0.8 * (2000 / 4)

    def test_fetch_decodes_records(self, env, loaded_tier):
        tier, graph = loaded_tier
        proc = env.process(tier.fetch_process([0, 1, 7]))
        records = env.run(until=proc)
        assert set(records) == {0, 1, 7}
        for node, record in records.items():
            expected = record_for_node(graph, node)
            assert record == expected

    def test_fetch_missing_keys_skipped(self, env, loaded_tier):
        tier, _graph = loaded_tier
        proc = env.process(tier.fetch_process([0, 99999]))
        records = env.run(until=proc)
        assert set(records) == {0}

    def test_fetch_hits_servers_in_parallel(self, env):
        # Two keys on two servers: elapsed time equals one service time,
        # not two, because multigets are issued concurrently.
        model = StorageServiceModel(per_request=10e-6, per_key=0, per_byte=0)
        tier = StorageTier(
            env, num_servers=2, service_model=model, partitioner=modulo_partitioner
        )
        from repro.storage import AdjacencyRecord

        tier.servers[0].load(0, AdjacencyRecord(0).encode())
        tier.servers[1].load(1, AdjacencyRecord(1).encode())
        proc = env.process(tier.fetch_process([0, 1]))
        env.run(until=proc)
        assert env.now == pytest.approx(10e-6)

    def test_partition_plan_groups_by_server(self, loaded_tier):
        tier, _graph = loaded_tier
        plan = tier.partition_plan([0, 3, 4, 6])
        assert plan == {0: [0, 3, 6], 1: [4]}

    def test_store_record_upserts(self, env, loaded_tier):
        tier, graph = loaded_tier
        record = record_for_node(graph, 0)
        record.out_edges.append((99, None))
        tier.store_record(record)
        proc = env.process(tier.fetch_process([0]))
        fetched = env.run(until=proc)
        assert 99 in fetched[0].out_neighbors()

    def test_total_live_bytes_positive_after_load(self, loaded_tier):
        tier, _graph = loaded_tier
        assert tier.total_live_bytes() > 0


class TestWritePath:
    def test_multiput_takes_write_time_and_stores(self, env):
        model = StorageServiceModel(
            write_per_request=5e-6, write_per_key=1e-6, write_per_byte=0,
        )
        server = StorageServer(env, 0, model)
        proc = env.process(
            server.multiput_process([(1, b"abc"), (2, b"de")], nbytes=5)
        )
        env.run(until=proc)
        assert env.now == pytest.approx(7e-6)  # 1 request + 2 records
        assert server.store.get(1) == b"abc"
        assert server.store.get(2) == b"de"
        assert server.writes_served == 1
        assert server.records_written == 2
        assert server.bytes_written == 5
        # Read counters untouched by writes.
        assert server.requests_served == 0 and server.bytes_served == 0

    def test_multiput_accounting_mode_stores_nothing(self, env):
        server = StorageServer(env, 0, StorageServiceModel())
        proc = env.process(
            server.multiput_process([(1, None), (2, None)], nbytes=64)
        )
        env.run(until=proc)
        assert len(server.store) == 0
        assert server.records_written == 2
        assert server.bytes_written == 64

    def test_multiput_on_failed_server_raises(self, env):
        server = StorageServer(env, 0, StorageServiceModel())
        server.fail()

        def client(caught):
            try:
                yield env.process(server.multiput_process([(1, b"x")], 1))
            except StorageServerDown:
                caught.append(True)

        caught = []
        env.process(client(caught))
        env.run()
        assert caught == [True]

    def test_writes_queue_behind_reads_on_the_pipeline(self, env):
        model = StorageServiceModel(
            per_request=10e-6, per_key=0, per_byte=0,
            write_per_request=10e-6, write_per_key=0, write_per_byte=0,
        )
        server = StorageServer(env, 0, model)
        server.load(1, b"x")

        def reader():
            yield env.process(server.multiget_process([1]))

        def writer(times):
            yield env.process(server.multiput_process([(2, b"y")], 1))
            times.append(env.now)

        times = []
        env.process(reader())
        env.process(writer(times))
        env.run()
        assert times == [pytest.approx(20e-6)]  # write waited for the read

    def test_tier_multiput_groups_and_runs_in_parallel(self, env):
        model = StorageServiceModel(
            write_per_request=10e-6, write_per_key=0, write_per_byte=0,
        )
        tier = StorageTier(
            env, num_servers=2, service_model=model,
            partitioner=modulo_partitioner,
        )
        proc = env.process(tier.multiput_process([
            (0, 8, b"a"), (1, 8, b"b"), (2, 8, b"c"),
        ]))
        written = env.run(until=proc)
        assert written == (3, 24, None)
        # One multiput per server, concurrently: one write service time.
        assert env.now == pytest.approx(10e-6)
        assert tier.servers[0].records_written == 2  # keys 0 and 2
        assert tier.servers[1].records_written == 1
        assert tier.servers[0].store.get(0) == b"a"

    def test_tier_multiput_charges_network_when_given(self, env):
        from repro.costs import NetworkModel

        model = StorageServiceModel(
            write_per_request=10e-6, write_per_key=0, write_per_byte=0,
        )
        network = NetworkModel(name="test", latency=5e-6, bandwidth=1e12)
        tier = StorageTier(
            env, num_servers=1, service_model=model,
            partitioner=modulo_partitioner,
        )
        proc = env.process(tier.multiput_process([(0, 4, None)], network))
        env.run(until=proc)
        # request transfer + write + ack transfer (~latency-dominated).
        assert env.now == pytest.approx(20e-6, rel=0.01)

    def test_tier_multiput_empty_batch_is_noop(self, env):
        tier = StorageTier(env, num_servers=2)
        proc = env.process(tier.multiput_process([]))
        assert env.run(until=proc) == (0, 0, None)
        assert env.now == 0.0

    def test_tier_multiput_partial_failure_reports_survivors(self, env):
        # One server down: the other's leg still completes, totals count
        # it, and the first error is returned instead of raised.
        model = StorageServiceModel(
            write_per_request=10e-6, write_per_key=0, write_per_byte=0,
        )
        tier = StorageTier(
            env, num_servers=2, service_model=model,
            partitioner=modulo_partitioner,
        )
        tier.servers[0].fail()
        proc = env.process(tier.multiput_process([
            (0, 8, b"a"), (1, 8, b"b"),
        ]))
        records, nbytes, error = env.run(until=proc)
        assert isinstance(error, StorageServerDown)
        assert (records, nbytes) == (1, 8)
        assert tier.servers[1].store.get(1) == b"b"
        assert tier.servers[0].records_written == 0
