"""Tests for the random-graph generators."""

import numpy as np
import pytest

from repro.graph import (
    barabasi_albert,
    copying_model,
    erdos_renyi,
    ring_of_cliques,
    rmat,
    watts_strogatz,
)


class TestErdosRenyi:
    def test_exact_edge_count(self):
        g = erdos_renyi(50, 120, seed=0)
        assert g.num_nodes == 50
        assert g.num_edges == 120

    def test_deterministic(self):
        a = erdos_renyi(40, 80, seed=9)
        b = erdos_renyi(40, 80, seed=9)
        assert sorted(a.edges()) == sorted(b.edges())

    def test_different_seeds_differ(self):
        a = erdos_renyi(40, 80, seed=1)
        b = erdos_renyi(40, 80, seed=2)
        assert sorted(a.edges()) != sorted(b.edges())

    def test_no_self_loops(self):
        g = erdos_renyi(30, 100, seed=3)
        assert all(u != v for u, v in g.edges())

    def test_rejects_impossible(self):
        with pytest.raises(ValueError):
            erdos_renyi(1, 5)


class TestBarabasiAlbert:
    def test_node_and_edge_counts(self):
        m = 3
        n = 100
        g = barabasi_albert(n, m, seed=0)
        assert g.num_nodes == n
        # Seed clique has m(m+1)/2 edges; each later node adds exactly m.
        assert g.num_edges == m * (m + 1) // 2 + (n - m - 1) * m

    def test_power_law_hubs_exist(self):
        g = barabasi_albert(2000, 2, seed=1)
        degrees = sorted((g.degree(u) for u in g.nodes()), reverse=True)
        # The top hub should be far above the average degree (heavy tail).
        average = 2 * g.num_edges / g.num_nodes
        assert degrees[0] > 8 * average

    def test_rejects_too_few_nodes(self):
        with pytest.raises(ValueError):
            barabasi_albert(3, 3)

    def test_deterministic(self):
        a = barabasi_albert(200, 4, seed=5)
        b = barabasi_albert(200, 4, seed=5)
        assert sorted(a.edges()) == sorted(b.edges())


class TestRmat:
    def test_counts_close_to_requested(self):
        g = rmat(10, 4000, seed=0)
        assert g.num_nodes == 1024
        assert g.num_edges == 4000

    def test_skewed_degree_distribution(self):
        g = rmat(11, 10000, seed=2)
        degrees = np.array([g.degree(u) for u in g.nodes()])
        # R-MAT with Graph500 params is highly skewed: max >> mean.
        assert degrees.max() > 10 * degrees.mean()

    def test_rejects_bad_probabilities(self):
        with pytest.raises(ValueError):
            rmat(5, 10, a=0.5, b=0.3, c=0.3)

    def test_deterministic(self):
        a = rmat(8, 500, seed=4)
        b = rmat(8, 500, seed=4)
        assert sorted(a.edges()) == sorted(b.edges())


class TestWattsStrogatz:
    def test_no_rewire_is_ring_lattice(self):
        g = watts_strogatz(10, 4, rewire_prob=0.0, seed=0)
        for u in range(10):
            assert g.has_edge(u, (u + 1) % 10)
            assert g.has_edge(u, (u + 2) % 10)

    def test_edge_count_constant_under_rewiring(self):
        lattice = watts_strogatz(50, 6, 0.0, seed=0)
        rewired = watts_strogatz(50, 6, 0.3, seed=0)
        assert lattice.num_edges == rewired.num_edges

    def test_odd_nearest_rejected(self):
        with pytest.raises(ValueError):
            watts_strogatz(10, 3, 0.1)


class TestCopyingModel:
    def test_node_count_and_out_degree_bound(self):
        g = copying_model(300, 5, seed=0)
        assert g.num_nodes == 300
        for u in range(6, 300):
            assert g.out_degree(u) <= 5

    def test_copying_creates_popular_pages(self):
        g = copying_model(2000, 5, copy_prob=0.8, seed=1)
        in_degrees = sorted((g.in_degree(u) for u in g.nodes()), reverse=True)
        mean_in = g.num_edges / g.num_nodes
        assert in_degrees[0] > 10 * mean_in

    def test_neighborhood_overlap_is_high(self):
        # The property the WebGraph analogue needs: pages linked to by a
        # common prototype share much of their out-neighborhood.
        g = copying_model(1000, 8, copy_prob=0.9, seed=3)
        overlaps = []
        for u in range(500, 520):
            for v in range(u + 1, u + 3):
                a = set(g.out_neighbors(u))
                b = set(g.out_neighbors(v))
                if a and b:
                    overlaps.append(len(a & b) / min(len(a), len(b)))
        # Some pairs must overlap strongly (copied prototypes).
        assert max(overlaps) > 0.4

    def test_rejects_zero_out_degree(self):
        with pytest.raises(ValueError):
            copying_model(10, 0)


class TestRingOfCliques:
    def test_structure(self):
        g = ring_of_cliques(3, 4)
        assert g.num_nodes == 12
        # Each clique: 4*3 directed edges; 3 bridges of 2 directed edges.
        assert g.num_edges == 3 * 12 + 3 * 2

    def test_single_clique_no_bridges(self):
        g = ring_of_cliques(1, 3)
        assert g.num_nodes == 3
        assert g.num_edges == 6
