"""Tests for the METIS-like partitioner and the greedy vertex cut."""

import numpy as np
import pytest

from repro.baselines import (
    edge_cut,
    greedy_vertex_cut,
    hash_partition,
    multilevel_partition,
    partition_loads,
    random_vertex_cut,
)
from repro.graph import CSRGraph, community_graph, erdos_renyi, ring_of_cliques


@pytest.fixture(scope="module")
def communities():
    graph = community_graph(16, 40, intra_degree=6, inter_degree=0.3, seed=4)
    csr = CSRGraph.from_graph(graph, direction="both")
    return graph, csr


class TestMultilevelPartition:
    def test_every_node_labelled(self, communities):
        graph, csr = communities
        labels = multilevel_partition(graph, 4, csr=csr)
        assert labels.shape == (csr.num_nodes,)
        assert set(np.unique(labels)) <= set(range(4))

    def test_balance_within_tolerance(self, communities):
        graph, csr = communities
        labels = multilevel_partition(graph, 4, balance=1.05, csr=csr)
        loads = partition_loads(labels, 4)
        assert loads.max() <= 1.25 * csr.num_nodes / 4  # generous envelope

    def test_beats_hash_partitioning_on_communities(self, communities):
        graph, csr = communities
        metis_labels = multilevel_partition(graph, 4, csr=csr)
        hash_labels = hash_partition(csr, 4)
        assert edge_cut(csr, metis_labels) < 0.6 * edge_cut(csr, hash_labels)

    def test_recovers_ring_of_cliques(self):
        graph = ring_of_cliques(8, 8)
        csr = CSRGraph.from_graph(graph, direction="both")
        labels = multilevel_partition(graph, 4, csr=csr)
        # Cliques should rarely be split: most cliques live in one part.
        intact = 0
        for clique in range(8):
            members = labels[clique * 8:(clique + 1) * 8]
            if len(set(members.tolist())) == 1:
                intact += 1
        assert intact >= 6

    def test_k_equal_one(self, communities):
        graph, csr = communities
        labels = multilevel_partition(graph, 1, csr=csr)
        assert (labels == 0).all()

    def test_invalid_k(self, communities):
        graph, csr = communities
        with pytest.raises(ValueError):
            multilevel_partition(graph, 0, csr=csr)

    def test_more_nodes_than_parts_required(self):
        graph = erdos_renyi(3, 3, seed=0)
        with pytest.raises(ValueError):
            multilevel_partition(graph, 10)

    def test_deterministic_for_seed(self, communities):
        graph, csr = communities
        a = multilevel_partition(graph, 4, seed=7, csr=csr)
        b = multilevel_partition(graph, 4, seed=7, csr=csr)
        assert (a == b).all()


class TestEdgeCut:
    def test_single_part_zero_cut(self, communities):
        _graph, csr = communities
        labels = np.zeros(csr.num_nodes, dtype=np.int32)
        assert edge_cut(csr, labels) == 0

    def test_full_split_counts_crossings(self):
        graph = ring_of_cliques(2, 3)
        csr = CSRGraph.from_graph(graph, direction="both")
        labels = np.array([0] * 3 + [1] * 3, dtype=np.int32)
        # Only the two bridge entries cross (one per direction row).
        assert edge_cut(csr, labels) == 2


class TestGreedyVertexCut:
    def test_every_edge_placed(self, communities):
        graph, _csr = communities
        cut = greedy_vertex_cut(graph, 4, seed=1)
        assert len(cut.edge_machine) == graph.num_edges

    def test_replication_factor_bounds(self, communities):
        graph, _csr = communities
        cut = greedy_vertex_cut(graph, 4, seed=1)
        factor = cut.replication_factor()
        assert 1.0 <= factor <= 4.0

    def test_greedy_beats_random_replication(self, communities):
        graph, _csr = communities
        greedy = greedy_vertex_cut(graph, 8, seed=1)
        random = random_vertex_cut(graph, 8, seed=1)
        assert greedy.replication_factor() < random.replication_factor()

    def test_loads_are_balanced(self, communities):
        graph, _csr = communities
        cut = greedy_vertex_cut(graph, 4, seed=1)
        loads = cut.machine_loads()
        assert loads.sum() == graph.num_edges
        assert loads.max() <= 1.5 * graph.num_edges / 4

    def test_replicas_cover_edge_endpoints(self, communities):
        graph, _csr = communities
        cut = greedy_vertex_cut(graph, 4, seed=1)
        for (u, v), machine in list(cut.edge_machine.items())[:200]:
            assert machine in cut.replicas[u]
            assert machine in cut.replicas[v]

    def test_isolated_nodes_get_single_replica(self):
        from repro.graph import Graph

        g = Graph()
        g.add_edge(0, 1)
        g.add_node(9)
        cut = greedy_vertex_cut(g, 3, seed=0)
        assert len(cut.replicas[9]) == 1

    def test_master_of_is_stable(self, communities):
        graph, _csr = communities
        cut = greedy_vertex_cut(graph, 4, seed=1)
        node = next(iter(graph.nodes()))
        assert cut.master_of(node) == cut.master_of(node)

    def test_invalid_machine_count(self, communities):
        graph, _csr = communities
        with pytest.raises(ValueError):
            greedy_vertex_cut(graph, 0)
