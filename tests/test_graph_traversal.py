"""Tests for traversal primitives: BFS, k-hop, RWR, bidirectional search."""

import random

import pytest

from repro.graph import (
    Graph,
    bfs_distances,
    bidirectional_reachability,
    k_hop_neighborhood,
    neighbor_aggregation,
    per_hop_frontiers,
    random_walk_with_restart,
    ring_of_cliques,
)


@pytest.fixture
def path_graph():
    """0 -> 1 -> 2 -> 3 -> 4 (directed path)."""
    g = Graph()
    for u in range(4):
        g.add_edge(u, u + 1)
    return g


class TestBfsDistances:
    def test_directed_out(self, path_graph):
        dist = bfs_distances(path_graph, 0, direction="out")
        assert dist == {0: 0, 1: 1, 2: 2, 3: 3, 4: 4}

    def test_directed_in(self, path_graph):
        dist = bfs_distances(path_graph, 4, direction="in")
        assert dist == {4: 0, 3: 1, 2: 2, 1: 3, 0: 4}

    def test_bidirected_sees_both_ways(self, path_graph):
        dist = bfs_distances(path_graph, 2, direction="both")
        assert dist == {2: 0, 1: 1, 3: 1, 0: 2, 4: 2}

    def test_max_hops_bound(self, path_graph):
        dist = bfs_distances(path_graph, 0, max_hops=2, direction="out")
        assert dist == {0: 0, 1: 1, 2: 2}

    def test_unreachable_nodes_absent(self):
        g = Graph()
        g.add_edge(0, 1)
        g.add_node(5)
        dist = bfs_distances(g, 0)
        assert 5 not in dist

    def test_bad_direction_rejected(self, path_graph):
        with pytest.raises(ValueError):
            bfs_distances(path_graph, 0, direction="sideways")


class TestKHopNeighborhood:
    def test_excludes_source(self, path_graph):
        assert 0 not in k_hop_neighborhood(path_graph, 0, 2)

    def test_ring_of_cliques_one_hop(self):
        g = ring_of_cliques(4, 5)
        # Node 1 is an interior clique member: 1-hop = its 4 clique mates.
        assert k_hop_neighborhood(g, 1, 1) == {0, 2, 3, 4}

    def test_two_hop_crosses_bridge(self):
        g = ring_of_cliques(4, 5)
        # Node 0 bridges to cliques 1 and 3; 1-hop includes both bridgeheads.
        hood = k_hop_neighborhood(g, 0, 1)
        assert 5 in hood and 15 in hood

    def test_per_hop_frontiers_partition_neighborhood(self, path_graph):
        frontiers = per_hop_frontiers(path_graph, 0, 3, direction="out")
        assert [sorted(f) for f in frontiers] == [[1], [2], [3]]
        union = set().union(*map(set, frontiers))
        assert union == k_hop_neighborhood(path_graph, 0, 3, direction="out")


class TestNeighborAggregation:
    def test_counts_all(self, path_graph):
        assert neighbor_aggregation(path_graph, 0, 2, direction="out") == 2

    def test_counts_by_label(self):
        g = Graph()
        g.add_edge(0, 1)
        g.add_edge(0, 2)
        g.add_edge(1, 3)
        g.set_node_label(1, "red")
        g.set_node_label(3, "red")
        g.set_node_label(2, "blue")
        assert neighbor_aggregation(g, 0, 2, label="red", direction="out") == 2
        assert neighbor_aggregation(g, 0, 2, label="blue", direction="out") == 1
        assert neighbor_aggregation(g, 0, 2, label="green", direction="out") == 0


class TestRandomWalkWithRestart:
    def test_path_length(self, path_graph):
        path = random_walk_with_restart(path_graph, 0, steps=7)
        assert len(path) == 8
        assert path[0] == 0

    def test_walk_stays_on_edges_or_restarts(self):
        g = ring_of_cliques(3, 4)
        rng = random.Random(7)
        path = random_walk_with_restart(g, 0, steps=50, rng=rng)
        neighbors_of = {u: set(g.neighbors(u)) | {0} for u in set(path)}
        for here, there in zip(path, path[1:]):
            assert there in neighbors_of[here]

    def test_restart_prob_one_never_leaves(self, path_graph):
        path = random_walk_with_restart(path_graph, 2, steps=5, restart_prob=1.0)
        assert path == [2] * 6

    def test_dead_end_forces_restart(self):
        g = Graph()
        g.add_edge(0, 1)
        path = random_walk_with_restart(
            g, 0, steps=4, restart_prob=0.0, direction="out",
            rng=random.Random(1),
        )
        # From 1 there is no out-edge: must restart to 0.
        assert path == [0, 1, 0, 1, 0]

    def test_deterministic_with_seeded_rng(self, path_graph):
        a = random_walk_with_restart(path_graph, 0, 20, rng=random.Random(3))
        b = random_walk_with_restart(path_graph, 0, 20, rng=random.Random(3))
        assert a == b


class TestBidirectionalReachability:
    def test_trivial_same_node(self, path_graph):
        assert bidirectional_reachability(path_graph, 2, 2, 0)

    def test_exact_hop_budget(self, path_graph):
        assert bidirectional_reachability(path_graph, 0, 4, 4)

    def test_insufficient_hops(self, path_graph):
        assert not bidirectional_reachability(path_graph, 0, 4, 3)

    def test_zero_hops_different_nodes(self, path_graph):
        assert not bidirectional_reachability(path_graph, 0, 1, 0)

    def test_direction_matters(self, path_graph):
        assert not bidirectional_reachability(path_graph, 4, 0, 10)

    def test_matches_forward_bfs_on_random_graphs(self):
        from repro.graph import erdos_renyi

        g = erdos_renyi(60, 150, seed=11)
        rng = random.Random(5)
        for _ in range(50):
            s = rng.randrange(60)
            t = rng.randrange(60)
            h = rng.randrange(5)
            forward = bfs_distances(g, s, max_hops=h, direction="out")
            expected = t in forward and forward[t] <= h
            assert bidirectional_reachability(g, s, t, h) == expected
