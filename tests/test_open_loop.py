"""Open-loop arrival processes: validation, determinism, serving.

The determinism contract mirrors ``churn_stream``'s: a seeded arrival
stream reads only the underlying query stream and its own RNG, so it
replays identically across routing schemes, admission configs, and across
two ``GraphService.open`` sessions.
"""

import pytest

from repro.core import (
    AdmissionConfig,
    ClusterConfig,
    GraphService,
    QueryIdAllocator,
    query_ids_from,
)
from repro.datasets import load_dataset
from repro.workloads import (
    diurnal_arrivals,
    flash_crowd_arrivals,
    hotspot_stream,
    merge_arrivals,
    poisson_arrivals,
    uniform_stream,
    zipfian_stream,
)


@pytest.fixture(scope="module")
def graph():
    return load_dataset("webgraph", scale=0.05, seed=1)


def queries(graph, n=60, seed=3):
    return list(uniform_stream(graph, num_queries=n, hops=1, seed=seed))


def as_tuples(arrivals):
    return [(a.at, a.tenant, a.query) for a in arrivals]


class TestValidation:
    def test_rejects_bad_rates(self, graph):
        qs = queries(graph, 5)
        for bad in (0.0, -1.0, float("inf"), float("nan")):
            with pytest.raises(ValueError, match="positive, finite"):
                poisson_arrivals(qs, rate=bad)
        with pytest.raises(ValueError, match="positive, finite"):
            diurnal_arrivals(qs, base_rate=0)
        with pytest.raises(ValueError, match="positive, finite"):
            flash_crowd_arrivals(qs, base_rate=-2, burst_start=0,
                                 burst_duration=1)

    def test_rejects_bad_shapes(self, graph):
        qs = queries(graph, 5)
        with pytest.raises(ValueError, match="amplitude"):
            diurnal_arrivals(qs, base_rate=10, amplitude=1.0)
        with pytest.raises(ValueError, match="period"):
            diurnal_arrivals(qs, base_rate=10, period=0)
        with pytest.raises(ValueError, match="burst"):
            flash_crowd_arrivals(qs, base_rate=10, burst_start=-1,
                                 burst_duration=1)
        with pytest.raises(ValueError, match="burst_multiplier"):
            flash_crowd_arrivals(qs, base_rate=10, burst_start=0,
                                 burst_duration=1, burst_multiplier=0.5)
        with pytest.raises(ValueError, match="start"):
            poisson_arrivals(qs, rate=10, start=-1.0)

    def test_merge_requires_streams(self):
        with pytest.raises(ValueError, match="at least one"):
            merge_arrivals()

    def test_validation_is_eager_generation_lazy(self, graph):
        # Errors surface at call time, before any query is consumed.
        with pytest.raises(ValueError):
            poisson_arrivals(iter(queries(graph, 5)), rate=-1)


class TestArrivalShapes:
    def test_poisson_times_nondecreasing_and_tagged(self, graph):
        arrivals = list(poisson_arrivals(
            queries(graph), rate=100.0, tenant="t0", seed=5,
        ))
        assert len(arrivals) == 60
        assert all(a.tenant == "t0" for a in arrivals)
        times = [a.at for a in arrivals]
        assert all(
            t1 >= t0 for t0, t1 in zip(times, times[1:], strict=False)
        )
        assert times[0] > 0

    def test_poisson_rate_rescales_same_pattern(self, graph):
        """Doubling the rate compresses the identical arrival pattern 2x —
        the property an offered-load sweep relies on."""
        qs = queries(graph)
        slow = list(poisson_arrivals(qs, rate=50.0, seed=5))
        fast = list(poisson_arrivals(qs, rate=100.0, seed=5))
        assert [a.query for a in slow] == [a.query for a in fast]
        for s, f in zip(slow, fast, strict=True):
            assert s.at == pytest.approx(2.0 * f.at)

    def test_diurnal_modulates_interarrival_density(self, graph):
        qs = list(uniform_stream(graph, num_queries=400, hops=1, seed=3))
        arrivals = list(diurnal_arrivals(
            qs, base_rate=100.0, amplitude=0.8, period=4.0, seed=5,
        ))
        assert len(arrivals) == 400
        # Peak half-periods (sin > 0) must be denser than trough halves.
        peak = sum(
            1 for a in arrivals if (a.at % 4.0) < 2.0
        )
        assert peak > len(arrivals) * 0.55

    def test_flash_crowd_burst_is_denser(self, graph):
        qs = list(uniform_stream(graph, num_queries=400, hops=1, seed=3))
        arrivals = list(flash_crowd_arrivals(
            qs, base_rate=50.0, burst_start=1.0, burst_duration=1.0,
            burst_multiplier=10.0, seed=5,
        ))
        in_burst = sum(1 for a in arrivals if 1.0 <= a.at < 2.0)
        before = sum(1 for a in arrivals if 0.0 <= a.at < 1.0)
        assert in_burst > 3 * max(1, before)

    def test_merge_is_time_ordered_and_complete(self, graph):
        a = list(poisson_arrivals(queries(graph, 30, seed=3), rate=40.0,
                                  tenant="a", seed=1))
        b = list(poisson_arrivals(queries(graph, 20, seed=4), rate=60.0,
                                  tenant="b", seed=2))
        merged = list(merge_arrivals(a, b))
        assert len(merged) == 50
        times = [m.at for m in merged]
        assert times == sorted(times)
        # Per-tenant order within the merge is each stream's own order.
        assert [m for m in merged if m.tenant == "a"] == a
        assert [m for m in merged if m.tenant == "b"] == b


class TestDeterminism:
    """Seeded streams replay identically (the churn_stream contract)."""

    @pytest.mark.parametrize("factory", [
        lambda qs: poisson_arrivals(qs, rate=80.0, tenant="t", seed=9),
        lambda qs: diurnal_arrivals(qs, base_rate=80.0, amplitude=0.6,
                                    period=2.0, tenant="t", seed=9),
        lambda qs: flash_crowd_arrivals(qs, base_rate=80.0, burst_start=0.2,
                                        burst_duration=0.3,
                                        burst_multiplier=6.0, tenant="t",
                                        seed=9),
    ], ids=["poisson", "diurnal", "flash_crowd"])
    def test_stream_replays_identically(self, graph, factory):
        def build():
            # Scoped ids so both replays mint the same query objects.
            with query_ids_from(QueryIdAllocator(start=10_000)):
                return as_tuples(factory(queries(graph, seed=3)))

        assert build() == build()

    def test_merged_multi_tenant_replay(self, graph):
        def build():
            with query_ids_from(QueryIdAllocator(start=20_000)):
                return as_tuples(merge_arrivals(
                    poisson_arrivals(
                        zipfian_stream(graph, num_queries=40, hops=2,
                                       skew=1.5, seed=3),
                        rate=100.0, tenant="interactive", seed=1,
                    ),
                    diurnal_arrivals(
                        hotspot_stream(graph, num_hotspots=4,
                                       queries_per_hotspot=5, seed=4),
                        base_rate=40.0, amplitude=0.5, period=1.0,
                        tenant="analytics", seed=2,
                    ),
                ))
        assert build() == build()

    @pytest.mark.parametrize("admission", [None, AdmissionConfig()],
                             ids=["naive", "admission"])
    def test_replays_across_routing_schemes_and_services(
        self, graph, admission,
    ):
        """The same seeded arrival stream, served through two separately
        opened services with different routing schemes, executes the
        identical query population — generation never reads cluster
        state."""
        def build():
            with query_ids_from(QueryIdAllocator(start=30_000)):
                return list(merge_arrivals(
                    poisson_arrivals(
                        uniform_stream(graph, num_queries=50, hops=1, seed=3),
                        rate=2000.0, tenant="a", seed=1,
                    ),
                    flash_crowd_arrivals(
                        uniform_stream(graph, num_queries=30, hops=2, seed=4),
                        base_rate=1000.0, burst_start=0.005,
                        burst_duration=0.005, burst_multiplier=4.0,
                        tenant="b", seed=2,
                    ),
                ))

        populations = []
        for routing in ("hash", "embed"):
            with GraphService.open(
                graph, ClusterConfig(routing=routing)
            ) as service:
                with service.session() as session:
                    stats = session.serve(build(), admission=admission)
                    report = session.report()
            assert stats.offered == 80
            populations.append(sorted(
                (r.query_id, r.kind, r.node, r.tenant)
                for r in report.records
            ))
        assert populations[0] == populations[1]

    def test_serve_rejects_unordered_arrivals(self, graph):
        a, b = list(poisson_arrivals(queries(graph, 2), rate=10.0, seed=1))
        with GraphService.open(graph, ClusterConfig(routing="hash")) as svc:
            with svc.session() as session:
                with pytest.raises(ValueError, match="time-ordered"):
                    session.serve([b, a])


class TestServe:
    def test_open_loop_timestamps_drive_injection(self, graph):
        """Arrivals enter at their absolute timestamps: the makespan of a
        slow arrival stream is its arrival span, not the service time."""
        arrivals = list(poisson_arrivals(
            queries(graph, 40), rate=100.0, seed=7,
        ))
        with GraphService.open(graph, ClusterConfig(routing="hash")) as svc:
            with svc.session() as session:
                session.serve(arrivals)
                report = session.report()
        assert len(report.records) == 40
        # enqueue instants must match the arrival offsets exactly.
        enqueued = sorted(r.enqueued_at for r in report.records)
        expected = sorted(a.at for a in arrivals)
        assert enqueued == pytest.approx(expected)

    def test_naive_serve_admission_stats_are_passthrough(self, graph):
        arrivals = list(poisson_arrivals(queries(graph, 25), rate=500.0,
                                         tenant="t", seed=7))
        with GraphService.open(graph, ClusterConfig(routing="hash")) as svc:
            with svc.session() as session:
                stats = session.serve(arrivals)
                report = session.report()
        assert stats.offered == stats.admitted == 25
        assert stats.shed == stats.rejected == 0
        assert report.admission is stats
        assert report.offered() == 25
        assert report.goodput() == report.throughput()
        assert report.per_tenant_stats()["t"]["queries"] == 25

    def test_serve_then_closed_loop_session_still_works(self, graph):
        """serve() leaves the session usable for closed-loop submission."""
        with GraphService.open(graph, ClusterConfig(routing="hash")) as svc:
            with svc.session() as session:
                session.serve(poisson_arrivals(
                    queries(graph, 10), rate=100.0, seed=7,
                ))
                session.submit_many(queries(graph, 5, seed=8))
                session.drain()
                report = session.report()
        assert len(report.records) == 15
