"""Unit tests for the labeled directed graph."""

import pytest

from repro.graph import Graph, GraphError


@pytest.fixture
def triangle():
    g = Graph()
    g.add_edge(0, 1)
    g.add_edge(1, 2)
    g.add_edge(2, 0)
    return g


class TestNodes:
    def test_add_node(self):
        g = Graph()
        g.add_node(5)
        assert g.has_node(5)
        assert 5 in g
        assert g.num_nodes == 1

    def test_add_node_idempotent(self):
        g = Graph()
        g.add_node(1)
        g.add_node(1)
        assert g.num_nodes == 1

    def test_node_label(self):
        g = Graph()
        g.add_node(1, label="person")
        assert g.node_label(1) == "person"

    def test_node_label_default_none(self):
        g = Graph()
        g.add_node(1)
        assert g.node_label(1) is None

    def test_set_node_label(self):
        g = Graph()
        g.add_node(1)
        g.set_node_label(1, "company")
        assert g.node_label(1) == "company"

    def test_relabel_via_add(self):
        g = Graph()
        g.add_node(1, label="a")
        g.add_node(1, label="b")
        assert g.node_label(1) == "b"

    def test_missing_node_raises(self):
        g = Graph()
        with pytest.raises(GraphError):
            g.node_label(99)

    def test_remove_node_drops_incident_edges(self, triangle):
        triangle.remove_node(1)
        assert not triangle.has_node(1)
        assert triangle.num_edges == 1  # only 2 -> 0 remains
        assert triangle.has_edge(2, 0)

    def test_remove_missing_node_raises(self):
        g = Graph()
        with pytest.raises(GraphError):
            g.remove_node(3)


class TestEdges:
    def test_add_edge_creates_endpoints(self):
        g = Graph()
        assert g.add_edge(1, 2) is True
        assert g.has_node(1) and g.has_node(2)
        assert g.has_edge(1, 2)
        assert not g.has_edge(2, 1)

    def test_duplicate_edge_not_counted(self):
        g = Graph()
        g.add_edge(1, 2)
        assert g.add_edge(1, 2) is False
        assert g.num_edges == 1

    def test_edge_label(self):
        g = Graph()
        g.add_edge(1, 2, label="founded")
        assert g.edge_label(1, 2) == "founded"

    def test_duplicate_edge_updates_label(self):
        g = Graph()
        g.add_edge(1, 2, label="old")
        g.add_edge(1, 2, label="new")
        assert g.edge_label(1, 2) == "new"

    def test_edge_label_missing_edge_raises(self):
        g = Graph()
        g.add_node(1)
        g.add_node(2)
        with pytest.raises(GraphError):
            g.edge_label(1, 2)

    def test_remove_edge(self, triangle):
        triangle.remove_edge(0, 1)
        assert not triangle.has_edge(0, 1)
        assert triangle.num_edges == 2

    def test_remove_missing_edge_raises(self, triangle):
        with pytest.raises(GraphError):
            triangle.remove_edge(0, 2)

    def test_edges_iterates_all(self, triangle):
        assert sorted(triangle.edges()) == [(0, 1), (1, 2), (2, 0)]

    def test_self_loop_allowed(self):
        g = Graph()
        g.add_edge(1, 1)
        assert g.has_edge(1, 1)
        assert g.degree(1) == 2  # counted once in, once out


class TestAdjacency:
    def test_out_and_in_neighbors(self, triangle):
        assert list(triangle.out_neighbors(0)) == [1]
        assert list(triangle.in_neighbors(0)) == [2]

    def test_bidirected_neighbors_deduplicated(self):
        g = Graph()
        g.add_edge(1, 2)
        g.add_edge(2, 1)
        assert sorted(g.neighbors(1)) == [2]

    def test_bidirected_neighbors_union(self, triangle):
        assert sorted(triangle.neighbors(0)) == [1, 2]

    def test_degrees(self, triangle):
        assert triangle.out_degree(0) == 1
        assert triangle.in_degree(0) == 1
        assert triangle.degree(0) == 2

    def test_degree_of_missing_node_raises(self):
        g = Graph()
        with pytest.raises(GraphError):
            g.degree(7)


class TestWholeGraph:
    def test_copy_is_independent(self, triangle):
        clone = triangle.copy()
        clone.add_edge(0, 2)
        assert not triangle.has_edge(0, 2)
        assert clone.num_edges == triangle.num_edges + 1

    def test_copy_preserves_labels(self):
        g = Graph()
        g.add_node(1, label="x")
        g.add_edge(1, 2, label="rel")
        clone = g.copy()
        assert clone.node_label(1) == "x"
        assert clone.edge_label(1, 2) == "rel"

    def test_subgraph_induced(self, triangle):
        sub = triangle.subgraph([0, 1])
        assert sub.num_nodes == 2
        assert sub.has_edge(0, 1)
        assert not sub.has_edge(1, 2)

    def test_subgraph_ignores_missing_nodes(self, triangle):
        sub = triangle.subgraph([0, 999])
        assert sub.num_nodes == 1

    def test_counts(self, triangle):
        assert triangle.num_nodes == 3
        assert triangle.num_edges == 3
