"""Tests for the workload generators (§4.1)."""

import pytest

from repro.core import (
    KSourceReachabilityQuery,
    NeighborAggregationQuery,
    NeighborhoodSampleQuery,
    PersonalizedPageRankQuery,
    RandomWalkQuery,
    ReachabilityQuery,
)
from repro.graph import CSRGraph, Graph, bfs_distances, ring_of_cliques
from repro.workloads import (
    FULL_MIX,
    hotspot_stream,
    hotspot_workload,
    interleave,
    k_reach_stream,
    k_reach_workload,
    ppr_stream,
    ppr_workload,
    sample_stream,
    sample_workload,
    uniform_stream,
    uniform_workload,
    zipfian_stream,
    zipfian_workload,
)


@pytest.fixture(scope="module")
def graph():
    return ring_of_cliques(10, 8)


class TestHotspotWorkload:
    def test_count_and_grouping(self, graph):
        queries = hotspot_workload(graph, num_hotspots=5,
                                   queries_per_hotspot=10, seed=1)
        assert len(queries) == 50

    def test_uniform_mix_of_query_types(self, graph):
        queries = hotspot_workload(graph, num_hotspots=6,
                                   queries_per_hotspot=9, seed=1)
        kinds = {
            NeighborAggregationQuery: 0,
            RandomWalkQuery: 0,
            ReachabilityQuery: 0,
        }
        for query in queries:
            kinds[type(query)] += 1
        assert set(kinds.values()) == {18}  # 54 queries / 3 kinds

    def test_hotspot_queries_are_local(self, graph):
        # Any two query nodes of one hotspot lie within 2r hops (§4.1).
        radius = 2
        queries = hotspot_workload(graph, num_hotspots=8,
                                   queries_per_hotspot=5, radius=radius,
                                   seed=3)
        for h in range(8):
            group = [q.node for q in queries[h * 5:(h + 1) * 5]]
            anchor = group[0]
            dist = bfs_distances(graph, anchor, max_hops=2 * radius)
            for node in group[1:]:
                assert node in dist

    def test_reachability_targets_in_same_hotspot(self, graph):
        radius = 1
        queries = hotspot_workload(graph, num_hotspots=10,
                                   queries_per_hotspot=3, radius=radius,
                                   seed=5)
        for query in queries:
            if isinstance(query, ReachabilityQuery):
                dist = bfs_distances(graph, query.node, max_hops=4 * radius)
                assert query.target in dist

    def test_deterministic(self, graph):
        a = hotspot_workload(graph, 4, 4, seed=9)
        b = hotspot_workload(graph, 4, 4, seed=9)
        assert [(type(q), q.node) for q in a] == [(type(q), q.node) for q in b]

    def test_respects_prebuilt_csr(self, graph):
        csr = CSRGraph.from_graph(graph, direction="both")
        queries = hotspot_workload(graph, 3, 3, seed=2, csr=csr)
        assert len(queries) == 9

    def test_custom_mix(self, graph):
        queries = hotspot_workload(graph, 2, 4, mix=("walk",), seed=1)
        assert all(isinstance(q, RandomWalkQuery) for q in queries)

    def test_invalid_parameters(self, graph):
        with pytest.raises(ValueError):
            hotspot_workload(graph, 0, 5)
        with pytest.raises(ValueError):
            hotspot_workload(graph, 5, 5, radius=-1)
        with pytest.raises(ValueError):
            hotspot_workload(graph, 5, 5, mix=())
        with pytest.raises(ValueError):
            hotspot_workload(graph, 5, 5, mix=("teleport",))

    def test_graph_without_edges_rejected(self):
        g = Graph()
        g.add_node(1)
        with pytest.raises(ValueError):
            hotspot_workload(g, 1, 1)


class TestUniformWorkload:
    def test_count(self, graph):
        assert len(uniform_workload(graph, num_queries=33, seed=1)) == 33

    def test_spreads_over_graph(self, graph):
        queries = uniform_workload(graph, num_queries=200, seed=1)
        # Uniform sampling should touch most cliques.
        cliques = {q.node // 8 for q in queries}
        assert len(cliques) >= 8

    def test_invalid_count(self, graph):
        with pytest.raises(ValueError):
            uniform_workload(graph, num_queries=0)


class TestStreams:
    def test_streams_are_lazy_but_match_lists(self, graph):
        for stream_fn, list_fn, kwargs in (
            (hotspot_stream, hotspot_workload,
             dict(num_hotspots=4, queries_per_hotspot=5, seed=3)),
            (uniform_stream, uniform_workload,
             dict(num_queries=25, seed=3)),
            (zipfian_stream, zipfian_workload,
             dict(num_queries=25, skew=1.5, seed=3)),
        ):
            stream = stream_fn(graph, **kwargs)
            assert iter(stream) is stream  # a true generator, no len()
            streamed = [(type(q), q.node) for q in stream]
            listed = [(type(q), q.node) for q in list_fn(graph, **kwargs)]
            assert streamed == listed

    def test_stream_validation_is_eager(self, graph):
        # Bad arguments must fail at call time, not at first consumption.
        with pytest.raises(ValueError):
            hotspot_stream(graph, num_hotspots=0, queries_per_hotspot=5)
        with pytest.raises(ValueError):
            zipfian_stream(graph, skew=0.5)
        with pytest.raises(ValueError):
            uniform_stream(graph, num_queries=0)

    def test_interleave_exhausts_all_streams(self, graph):
        mixed = list(interleave([
            uniform_stream(graph, num_queries=20, mix=("aggregation",),
                           seed=1),
            zipfian_stream(graph, num_queries=30, skew=1.5, mix=("walk",),
                           seed=2),
        ], seed=5))
        assert len(mixed) == 50
        kinds = {type(q) for q in mixed}
        assert kinds == {NeighborAggregationQuery, RandomWalkQuery}
        # Deterministic for a fixed seed.
        again = list(interleave([
            uniform_stream(graph, num_queries=20, mix=("aggregation",),
                           seed=1),
            zipfian_stream(graph, num_queries=30, skew=1.5, mix=("walk",),
                           seed=2),
        ], seed=5))
        assert [(type(q), q.node) for q in mixed] == [
            (type(q), q.node) for q in again
        ]

    def test_interleave_rejects_empty(self):
        with pytest.raises(ValueError):
            interleave([])


class TestFullMixAndRegistryKinds:
    def test_full_mix_yields_all_six_operators(self, graph):
        queries = uniform_workload(graph, num_queries=60, mix=FULL_MIX,
                                   seed=2)
        kinds = {type(q) for q in queries}
        assert kinds == {
            NeighborAggregationQuery, RandomWalkQuery, ReachabilityQuery,
            PersonalizedPageRankQuery, KSourceReachabilityQuery,
            NeighborhoodSampleQuery,
        }

    def test_hotspot_full_mix_sources_stay_in_ball(self, graph):
        radius = 1
        queries = hotspot_workload(graph, num_hotspots=6,
                                   queries_per_hotspot=6, radius=radius,
                                   mix=("k_reach",), seed=4)
        for query in queries:
            dist = bfs_distances(graph, query.node, max_hops=4 * radius)
            for anchor in query.all_sources():
                assert anchor in dist
            assert query.target in dist

    def test_unknown_mix_entry_fails_eagerly_in_streams(self, graph):
        # Registry-driven validation happens at stream *creation* (lazy
        # generation must not defer the error to first consumption).
        with pytest.raises(ValueError, match="teleport"):
            uniform_stream(graph, num_queries=5, mix=("teleport",))
        with pytest.raises(ValueError, match="workload fact"):
            # Registered operators without factories are refused too.
            from repro.core import QueryOperator, QueryStats, default_registry
            from repro.core.queries import Query
            from dataclasses import dataclass

            @dataclass(frozen=True)
            class _NoFactory(Query):
                pass

            def _noop(processor, query):
                yield processor.env.timeout(0)
                return QueryStats()

            default_registry.register(QueryOperator(
                name="nofactory", query_type=_NoFactory, executor=_noop,
                cost_class="point",
            ))
            try:
                uniform_stream(graph, num_queries=5, mix=("nofactory",))
            finally:
                default_registry.unregister("nofactory")


class TestFamilyStreams:
    def test_streams_match_workload_lists(self, graph):
        for stream_fn, list_fn, kwargs in (
            (ppr_stream, ppr_workload,
             dict(num_queries=15, walks=2, steps=3, seed=3)),
            (k_reach_stream, k_reach_workload,
             dict(num_queries=15, num_sources=3, seed=3)),
            (sample_stream, sample_workload,
             dict(num_queries=15, fanouts=(4, 2), seed=3)),
        ):
            stream = stream_fn(graph, **kwargs)
            assert iter(stream) is stream  # a true generator, no len()
            streamed = [(type(q), q.node) for q in stream]
            listed = [(type(q), q.node) for q in list_fn(graph, **kwargs)]
            assert streamed == listed

    def test_validation_is_eager(self, graph):
        with pytest.raises(ValueError):
            ppr_stream(graph, num_queries=0)
        with pytest.raises(ValueError):
            ppr_stream(graph, num_queries=5, walks=0)
        with pytest.raises(ValueError):
            ppr_stream(graph, num_queries=5, skew=1.0)
        with pytest.raises(ValueError):
            k_reach_stream(graph, num_queries=5, num_sources=0)
        with pytest.raises(ValueError):
            k_reach_stream(graph, num_queries=5, num_sources=65)
        with pytest.raises(ValueError):
            sample_stream(graph, num_queries=5, fanouts=())

    def test_k_reach_batches_draw_from_one_ball(self, graph):
        radius = 1
        for query in k_reach_workload(graph, num_queries=10, num_sources=4,
                                      radius=radius, seed=7):
            assert len(query.all_sources()) <= 4
            # All anchors + target lie within 2*radius of the primary.
            dist = bfs_distances(graph, query.node, max_hops=4 * radius)
            for anchor in query.all_sources():
                assert anchor in dist
            assert query.target in dist

    def test_ppr_zipf_seeds_repeat(self, graph):
        queries = ppr_workload(graph, num_queries=200, skew=2.0, seed=1)
        counts = {}
        for query in queries:
            counts[query.node] = counts.get(query.node, 0) + 1
        assert max(counts.values()) > 20  # hot seeds dominate

    def test_deterministic(self, graph):
        a = [(q.node, q.seed) for q in ppr_workload(graph, num_queries=20,
                                                    seed=9)]
        b = [(q.node, q.seed) for q in ppr_workload(graph, num_queries=20,
                                                    seed=9)]
        assert a == b


class TestZipfianWorkload:
    def test_repeats_hot_nodes(self, graph):
        queries = zipfian_workload(graph, num_queries=300, skew=1.5, seed=1)
        counts = {}
        for query in queries:
            counts[query.node] = counts.get(query.node, 0) + 1
        top = max(counts.values())
        assert top > 20  # the hottest node dominates

    def test_invalid_skew(self, graph):
        with pytest.raises(ValueError):
            zipfian_workload(graph, skew=1.0)
