"""Tests for the workload generators (§4.1)."""

import pytest

from repro.core import (
    NeighborAggregationQuery,
    RandomWalkQuery,
    ReachabilityQuery,
)
from repro.graph import CSRGraph, Graph, bfs_distances, ring_of_cliques
from repro.workloads import (
    hotspot_stream,
    hotspot_workload,
    interleave,
    uniform_stream,
    uniform_workload,
    zipfian_stream,
    zipfian_workload,
)


@pytest.fixture(scope="module")
def graph():
    return ring_of_cliques(10, 8)


class TestHotspotWorkload:
    def test_count_and_grouping(self, graph):
        queries = hotspot_workload(graph, num_hotspots=5,
                                   queries_per_hotspot=10, seed=1)
        assert len(queries) == 50

    def test_uniform_mix_of_query_types(self, graph):
        queries = hotspot_workload(graph, num_hotspots=6,
                                   queries_per_hotspot=9, seed=1)
        kinds = {
            NeighborAggregationQuery: 0,
            RandomWalkQuery: 0,
            ReachabilityQuery: 0,
        }
        for query in queries:
            kinds[type(query)] += 1
        assert set(kinds.values()) == {18}  # 54 queries / 3 kinds

    def test_hotspot_queries_are_local(self, graph):
        # Any two query nodes of one hotspot lie within 2r hops (§4.1).
        radius = 2
        queries = hotspot_workload(graph, num_hotspots=8,
                                   queries_per_hotspot=5, radius=radius,
                                   seed=3)
        for h in range(8):
            group = [q.node for q in queries[h * 5:(h + 1) * 5]]
            anchor = group[0]
            dist = bfs_distances(graph, anchor, max_hops=2 * radius)
            for node in group[1:]:
                assert node in dist

    def test_reachability_targets_in_same_hotspot(self, graph):
        radius = 1
        queries = hotspot_workload(graph, num_hotspots=10,
                                   queries_per_hotspot=3, radius=radius,
                                   seed=5)
        for query in queries:
            if isinstance(query, ReachabilityQuery):
                dist = bfs_distances(graph, query.node, max_hops=4 * radius)
                assert query.target in dist

    def test_deterministic(self, graph):
        a = hotspot_workload(graph, 4, 4, seed=9)
        b = hotspot_workload(graph, 4, 4, seed=9)
        assert [(type(q), q.node) for q in a] == [(type(q), q.node) for q in b]

    def test_respects_prebuilt_csr(self, graph):
        csr = CSRGraph.from_graph(graph, direction="both")
        queries = hotspot_workload(graph, 3, 3, seed=2, csr=csr)
        assert len(queries) == 9

    def test_custom_mix(self, graph):
        queries = hotspot_workload(graph, 2, 4, mix=("walk",), seed=1)
        assert all(isinstance(q, RandomWalkQuery) for q in queries)

    def test_invalid_parameters(self, graph):
        with pytest.raises(ValueError):
            hotspot_workload(graph, 0, 5)
        with pytest.raises(ValueError):
            hotspot_workload(graph, 5, 5, radius=-1)
        with pytest.raises(ValueError):
            hotspot_workload(graph, 5, 5, mix=())
        with pytest.raises(ValueError):
            hotspot_workload(graph, 5, 5, mix=("teleport",))

    def test_graph_without_edges_rejected(self):
        g = Graph()
        g.add_node(1)
        with pytest.raises(ValueError):
            hotspot_workload(g, 1, 1)


class TestUniformWorkload:
    def test_count(self, graph):
        assert len(uniform_workload(graph, num_queries=33, seed=1)) == 33

    def test_spreads_over_graph(self, graph):
        queries = uniform_workload(graph, num_queries=200, seed=1)
        # Uniform sampling should touch most cliques.
        cliques = {q.node // 8 for q in queries}
        assert len(cliques) >= 8

    def test_invalid_count(self, graph):
        with pytest.raises(ValueError):
            uniform_workload(graph, num_queries=0)


class TestStreams:
    def test_streams_are_lazy_but_match_lists(self, graph):
        for stream_fn, list_fn, kwargs in (
            (hotspot_stream, hotspot_workload,
             dict(num_hotspots=4, queries_per_hotspot=5, seed=3)),
            (uniform_stream, uniform_workload,
             dict(num_queries=25, seed=3)),
            (zipfian_stream, zipfian_workload,
             dict(num_queries=25, skew=1.5, seed=3)),
        ):
            stream = stream_fn(graph, **kwargs)
            assert iter(stream) is stream  # a true generator, no len()
            streamed = [(type(q), q.node) for q in stream]
            listed = [(type(q), q.node) for q in list_fn(graph, **kwargs)]
            assert streamed == listed

    def test_stream_validation_is_eager(self, graph):
        # Bad arguments must fail at call time, not at first consumption.
        with pytest.raises(ValueError):
            hotspot_stream(graph, num_hotspots=0, queries_per_hotspot=5)
        with pytest.raises(ValueError):
            zipfian_stream(graph, skew=0.5)
        with pytest.raises(ValueError):
            uniform_stream(graph, num_queries=0)

    def test_interleave_exhausts_all_streams(self, graph):
        mixed = list(interleave([
            uniform_stream(graph, num_queries=20, mix=("aggregation",),
                           seed=1),
            zipfian_stream(graph, num_queries=30, skew=1.5, mix=("walk",),
                           seed=2),
        ], seed=5))
        assert len(mixed) == 50
        kinds = {type(q) for q in mixed}
        assert kinds == {NeighborAggregationQuery, RandomWalkQuery}
        # Deterministic for a fixed seed.
        again = list(interleave([
            uniform_stream(graph, num_queries=20, mix=("aggregation",),
                           seed=1),
            zipfian_stream(graph, num_queries=30, skew=1.5, mix=("walk",),
                           seed=2),
        ], seed=5))
        assert [(type(q), q.node) for q in mixed] == [
            (type(q), q.node) for q in again
        ]

    def test_interleave_rejects_empty(self):
        with pytest.raises(ValueError):
            interleave([])


class TestZipfianWorkload:
    def test_repeats_hot_nodes(self, graph):
        queries = zipfian_workload(graph, num_queries=300, skew=1.5, seed=1)
        counts = {}
        for query in queries:
            counts[query.node] = counts.get(query.node, 0) + 1
        top = max(counts.values())
        assert top > 20  # the hottest node dominates

    def test_invalid_skew(self, graph):
        with pytest.raises(ValueError):
            zipfian_workload(graph, skew=1.0)
