"""Live graph updates end-to-end: deltas through graph, assets, storage,
caches and routing staleness/refresh; churn streams through sessions."""

import numpy as np
import pytest

from repro import ClusterConfig, GraphService, GraphUpdate
from repro.core import GraphAssets, NeighborAggregationQuery
from repro.graph import CSRGraph, Graph, GraphError
from repro.graph.updates import apply_updates, validate_updates
from repro.workloads import churn_stream, churn_workload


def ring_graph(n=12):
    graph = Graph()
    for i in range(n):
        graph.add_edge(i, (i + 1) % n)
    return graph


def _config(routing="hash", **kwargs):
    defaults = dict(
        num_processors=3,
        num_storage_servers=2,
        cache_capacity_bytes=1 << 20,
        num_landmarks=6,
        min_separation=1,
        dim=3,
        embed_method="lmds",
    )
    defaults.update(kwargs)
    return ClusterConfig(routing=routing, **defaults)


# ---------------------------------------------------------------------------
# The delta type and graph-layer application
# ---------------------------------------------------------------------------

class TestGraphUpdateType:
    def test_kind_validation(self):
        with pytest.raises(ValueError, match="unknown update kind"):
            GraphUpdate(kind="upsert", u=1)
        with pytest.raises(ValueError, match="both endpoints"):
            GraphUpdate(kind="add_edge", u=1)
        with pytest.raises(ValueError, match="single node"):
            GraphUpdate(kind="add_node", u=1, v=2)

    def test_constructors_and_touched(self):
        assert GraphUpdate.add_edge(1, 2).touched() == (1, 2)
        assert GraphUpdate.remove_edge(3, 3).touched() == (3,)
        assert GraphUpdate.add_node(7).touched() == (7,)

    def test_apply_updates_returns_dirty_and_new(self):
        graph = ring_graph(4)
        dirty, new = apply_updates(graph, [
            GraphUpdate.add_node(100),
            GraphUpdate.add_edge(100, 0),
            GraphUpdate.add_edge(1, 2),   # already exists: no-op upsert
            GraphUpdate.remove_edge(2, 3),
        ])
        assert new == {100}
        # The no-op upsert dirties nothing: 1 is clean, 2 only via removal.
        assert dirty == {100, 0, 2, 3}
        assert graph.has_edge(100, 0)
        assert not graph.has_edge(2, 3)

    def test_noop_upserts_dirty_nothing(self):
        # Code-review regression: re-adding an existing edge (or node)
        # without a label change must not trigger rewrites/invalidation/
        # staleness for records whose bytes did not change.
        graph = ring_graph(4)
        assert apply_updates(graph, [GraphUpdate.add_edge(0, 1)]) == (set(), set())
        assert apply_updates(graph, [GraphUpdate.add_node(2)]) == (set(), set())
        # A label change does change the record bytes: dirty.
        dirty, new = apply_updates(graph, [GraphUpdate.add_edge(0, 1, label="x")])
        assert dirty == {0, 1} and new == set()
        dirty, new = apply_updates(graph, [GraphUpdate.add_node(2, label="y")])
        assert dirty == {2} and new == set()

    def test_batch_validation_is_atomic(self):
        graph = ring_graph(4)
        before = set(graph.edges())
        with pytest.raises(GraphError, match="non-existent edge"):
            apply_updates(graph, [
                GraphUpdate.add_edge(0, 2),
                GraphUpdate.remove_edge(5, 6),  # invalid: nothing applied
            ])
        assert set(graph.edges()) == before

    def test_validation_tracks_batch_local_edges(self):
        graph = ring_graph(4)
        # Removing an edge the same batch adds is valid...
        validate_updates(graph, [
            GraphUpdate.add_edge(0, 2), GraphUpdate.remove_edge(0, 2),
        ])
        # ...and removing it twice is not.
        with pytest.raises(GraphError):
            validate_updates(graph, [
                GraphUpdate.add_edge(0, 2),
                GraphUpdate.remove_edge(0, 2),
                GraphUpdate.remove_edge(0, 2),
            ])
        with pytest.raises(TypeError, match="not GraphUpdate"):
            validate_updates(graph, [object()])


# ---------------------------------------------------------------------------
# Assets: append-stable compact indices, CSR splicing
# ---------------------------------------------------------------------------

class TestAssetsLiveUpdate:
    def test_compact_indices_stable_and_appended(self):
        graph = ring_graph(6)
        assets = GraphAssets(graph)
        before = dict(assets.compact)
        sizes_before = assets.record_sizes.copy()
        owners_before = assets.owner_array(2).copy()
        dirty, new = apply_updates(graph, [
            GraphUpdate.add_edge(100, 0), GraphUpdate.add_edge(100, 3),
        ])
        assets.apply_graph_updates(dirty, new)
        for node, idx in before.items():
            assert assets.compact[node] == idx
        assert assets.compact[100] == 6
        assert assets.num_nodes == 7
        # Untouched nodes keep sizes/owners; dirty ones re-sized.
        untouched = [n for n in before if n not in dirty]
        for node in untouched:
            assert assets.record_sizes[before[node]] == sizes_before[before[node]]
            assert assets.owner_array(2)[before[node]] == owners_before[before[node]]
        assert assets.record_sizes[6] > 0

    def test_csr_views_match_full_rebuild(self):
        rng = np.random.default_rng(3)
        graph = ring_graph(10)
        assets = GraphAssets(graph)
        _ = assets.csr_out, assets.csr_in  # materialise all three views
        for step in range(15):
            kind = rng.integers(0, 3)
            if kind == 0:
                u, v = int(rng.integers(0, 10)), int(rng.integers(0, 10))
                updates = [GraphUpdate.add_edge(u, v)]
            elif kind == 1:
                edges = list(graph.edges())
                u, v = edges[int(rng.integers(0, len(edges)))]
                updates = [GraphUpdate.remove_edge(u, v)]
            else:
                updates = [GraphUpdate.add_edge(200 + step, int(rng.integers(0, 10)))]
            dirty, new = apply_updates(graph, updates)
            assets.apply_graph_updates(dirty, new)
            for direction, view in (
                ("both", assets.csr_both),
                ("out", assets.csr_out),
                ("in", assets.csr_in),
            ):
                rebuilt = CSRGraph.from_graph(
                    graph, direction=direction, node_ids=assets.node_ids
                )
                assert np.array_equal(view.indptr, rebuilt.indptr)
                # Row contents must match as sets (bi-directed dedup order
                # is reproduced exactly by the splice, so compare exact).
                assert np.array_equal(view.indices, rebuilt.indices)
                assert np.array_equal(view.node_ids, rebuilt.node_ids)

    def test_record_sizes_track_adjacency_growth(self):
        graph = ring_graph(6)
        assets = GraphAssets(graph)
        idx = assets.compact[0]
        before = int(assets.record_sizes[idx])
        dirty, new = apply_updates(graph, [GraphUpdate.add_edge(3, 0)])
        assets.apply_graph_updates(dirty, new)
        assert int(assets.record_sizes[idx]) > before


# ---------------------------------------------------------------------------
# Service end-to-end: storage writes, cache invalidation, staleness
# ---------------------------------------------------------------------------

class TestServiceLiveUpdates:
    def test_new_node_is_queryable_and_results_reflect_updates(self):
        graph = ring_graph(12)
        with GraphService.open(graph, _config("hash")) as service:
            with service.session() as session:
                # 2-hop aggregation around node 0 on the ring: {1,2,11,10}.
                q1 = session.submit(NeighborAggregationQuery(node=0, hops=2))
                session.drain()
                assert session.records[-1].stats.result == 4
                session.apply_updates([GraphUpdate.add_edge(50, 0)])
                q2 = session.submit(NeighborAggregationQuery(node=0, hops=2))
                session.drain()
                # The new neighbor joins the 2-hop set.
                assert session.records[-1].stats.result == 5
                q3 = session.submit(NeighborAggregationQuery(node=50, hops=1))
                session.drain()
                assert session.records[-1].stats.result == 1
                session.apply_updates([GraphUpdate.remove_edge(50, 0)])
                session.submit(NeighborAggregationQuery(node=0, hops=2))
                session.drain()
                assert session.records[-1].stats.result == 4
                assert {q1.query_id, q2.query_id, q3.query_id} <= {
                    r.query_id for r in session.records
                }

    def test_update_report_and_cumulative_counters(self):
        graph = ring_graph(12)
        with GraphService.open(graph, _config("hash")) as service:
            report = service.apply_updates([
                GraphUpdate.add_node(99),
                GraphUpdate.add_edge(99, 0),
                GraphUpdate.add_edge(3, 99),
            ])
            assert report.updates_applied == 3
            assert report.nodes_added == 1
            # Dirty records: 99, 0, 3.
            assert report.records_written == 3
            assert report.bytes_written > 0
            assert report.stale_nodes == 3
            assert not report.refreshed
            assert report.elapsed_s > 0
            assert service.updates.updates_applied == 3
            assert service.updates.records_written == 3

    def test_writes_advance_simulated_time_and_hit_servers(self):
        graph = ring_graph(12)
        with GraphService.open(graph, _config("hash")) as service:
            before = service.env.now
            service.apply_updates([GraphUpdate.add_edge(0, 6)])
            assert service.env.now > before
            assert sum(s.writes_served for s in service.tier.servers) >= 1
            assert sum(s.records_written for s in service.tier.servers) == 2

    def test_materialized_storage_holds_rewritten_record(self):
        graph = ring_graph(8)
        config = _config("hash", materialize_storage=True)
        with GraphService.open(graph, config) as service:
            service.apply_updates([GraphUpdate.add_edge(0, 4)])
            from repro.storage import AdjacencyRecord
            payload = service.tier.locate(0).store.get(0)
            record = AdjacencyRecord.decode(payload)
            assert 4 in record.out_neighbors()

    def test_caches_are_invalidated(self):
        graph = ring_graph(12)
        with GraphService.open(graph, _config("hash")) as service:
            with service.session() as session:
                session.submit(NeighborAggregationQuery(node=0, hops=2))
                session.drain()
                cached_before = sum(len(p.cache) for p in service.processors)
                assert cached_before > 0
                report = session.apply_updates([GraphUpdate.add_edge(1, 11)])
                assert report.cache_entries_invalidated >= 1
                invalidations = sum(
                    p.cache.stats.invalidations for p in service.processors
                )
                assert invalidations == report.cache_entries_invalidated
                # A re-query fetches the invalidated records again.
                stats = service.tier.servers
                fetched_before = sum(s.keys_served for s in stats)
                session.submit(NeighborAggregationQuery(node=0, hops=2))
                session.drain()
                assert sum(s.keys_served for s in stats) > fetched_before

    def test_closed_service_refuses_updates(self):
        graph = ring_graph(8)
        service = GraphService.open(graph, _config("hash"))
        service.close()
        with pytest.raises(RuntimeError, match="closed"):
            service.apply_updates([GraphUpdate.add_node(99)])
        with pytest.raises(RuntimeError, match="closed"):
            service.refresh_routing()


# ---------------------------------------------------------------------------
# Routing staleness and incremental refresh
# ---------------------------------------------------------------------------

class TestStalenessAndRefresh:
    def test_stale_nodes_fall_back_until_refresh(self):
        graph = ring_graph(24)
        with GraphService.open(graph, _config("embed")) as service:
            strategy = service.strategy
            assert strategy.staleness is service.updates.stale
            service.apply_updates([GraphUpdate.add_edge(0, 12)])
            fallbacks_before = strategy.fallbacks
            with service.session() as session:
                session.submit(NeighborAggregationQuery(node=0, hops=1))
                session.drain()
            assert strategy.fallbacks == fallbacks_before + 1
            refreshed = service.refresh_routing()
            assert refreshed == 2  # both endpoints were stale
            assert not service.updates.stale
            with service.session() as session:
                session.submit(NeighborAggregationQuery(node=0, hops=1))
                session.drain()
            assert strategy.fallbacks == fallbacks_before + 1  # no new fallback

    def test_refresh_resolves_new_node_chains_in_embedding(self):
        # Code-review regression: a new node whose only neighbor is itself
        # new must get a real neighborhood placement (via the deferred
        # second pass), not the landmark-centroid fallback forever.
        graph = ring_graph(24)
        with GraphService.open(graph, _config("embed")) as service:
            embedding = service.strategy.embedding
            service.apply_updates([
                GraphUpdate.add_edge(201, 0),   # 201 touches the old graph
                GraphUpdate.add_edge(200, 201),  # 200 only touches 201
            ])
            service.refresh_routing()
            c201 = embedding.coordinates_of(201)
            c200 = embedding.coordinates_of(200)
            np.testing.assert_allclose(
                c201,
                np.mean(np.stack([
                    embedding.coordinates_of(0), c200,
                ]), axis=0),
            )
            # 200's only neighbor is 201: placed at 201's first-pass
            # coordinates, not at the landmark centroid.
            fallback = embedding.landmark_coords.mean(axis=0)
            assert not np.allclose(c200, fallback)

    def test_auto_refresh_reports_false_when_nothing_refreshable(self):
        # Code-review regression: report.refreshed must not claim a
        # refresh happened when nothing could be refreshed.
        graph = ring_graph(8)
        config = _config("hash", update_refresh_interval=1)
        with GraphService.open(graph, config) as service:
            report = service.apply_updates([GraphUpdate.add_node(50)])
            assert not report.refreshed
            assert service.updates.stale == {50}

    def test_failed_write_reports_surviving_server_totals(self):
        # Code-review regression: manager totals must count what the
        # surviving servers actually wrote, matching per-server counters.
        from repro.storage import StorageServerDown

        graph = ring_graph(12)
        with GraphService.open(graph, _config("hash")) as service:
            # Dirty nodes 0 and 6 land on different servers under murmur
            # for this config; find a split by failing exactly one owner.
            owner = service.assets.owner_array(service.tier.num_servers)
            a, b = 0, next(
                n for n in range(1, 12)
                if owner[service.assets.compact[n]]
                != owner[service.assets.compact[0]]
            )
            service.tier.servers[owner[service.assets.compact[a]]].fail()
            with pytest.raises(StorageServerDown):
                service.apply_updates([GraphUpdate.add_edge(a, b)])
            written = sum(s.records_written for s in service.tier.servers)
            assert service.updates.records_written == written
            assert written == 1  # b's record landed, a's did not

    def test_new_node_embedded_by_refresh(self):
        graph = ring_graph(24)
        with GraphService.open(graph, _config("embed")) as service:
            embedding = service.strategy.embedding
            service.apply_updates([
                GraphUpdate.add_edge(100, 0), GraphUpdate.add_edge(100, 1),
            ])
            assert embedding.coordinates_of(100) is None
            service.refresh_routing()
            coords = embedding.coordinates_of(100)
            assert coords is not None
            # Neighbor-centroid placement: between its two neighbors.
            expected = np.mean(np.stack([
                embedding.coordinates_of(0), embedding.coordinates_of(1),
            ]), axis=0)
            np.testing.assert_allclose(coords, expected)

    def test_landmark_index_refreshed_incrementally(self):
        graph = ring_graph(24)
        with GraphService.open(graph, _config("landmark")) as service:
            index = service.strategy.index
            service.apply_updates([GraphUpdate.add_edge(100, 0)])
            assert not index.knows(100)
            service.refresh_routing()
            assert index.knows(100)
            vector = index.landmark_vector(100)
            neighbor = index.landmark_vector(0)
            finite = np.isfinite(neighbor)
            assert np.allclose(vector[finite], neighbor[finite] + 1.0)

    def test_auto_refresh_interval(self):
        graph = ring_graph(24)
        config = _config("embed", update_refresh_interval=2)
        with GraphService.open(graph, config) as service:
            first = service.apply_updates([GraphUpdate.add_node(50)])
            assert not first.refreshed
            second = service.apply_updates([GraphUpdate.add_node(51)])
            assert second.refreshed
            assert service.updates.refreshes == 1
            assert not service.updates.stale

    def test_adaptive_arms_share_staleness_and_refresh(self):
        graph = ring_graph(24)
        with GraphService.open(graph, _config("adaptive")) as service:
            arms = service.strategy.arms
            service.apply_updates([GraphUpdate.add_edge(100, 0)])
            assert 100 in arms["embed"].staleness
            assert 100 in arms["landmark"].staleness
            service.refresh_routing()
            assert arms["embed"].embedding.coordinates_of(100) is not None
            assert arms["landmark"].index.knows(100)

    def test_refresh_without_staleness_is_noop(self):
        graph = ring_graph(8)
        with GraphService.open(graph, _config("embed")) as service:
            assert service.refresh_routing() == 0
            assert service.updates.refreshes == 0

    def test_refresh_covers_memoized_assets_after_routing_swap(self):
        # Code-review regression: a memoized embedding must be refreshed
        # (and staleness only then cleared) even while the active strategy
        # is hash — set_routing("embed") later reuses that exact object.
        graph = ring_graph(24)
        with GraphService.open(graph, _config("embed")) as service:
            embedding = service.strategy.embedding
            service.set_routing("hash")
            service.apply_updates([GraphUpdate.add_edge(100, 0)])
            assert service.refresh_routing() == 2
            assert not service.updates.stale
            assert embedding.coordinates_of(100) is not None
            swapped = service.set_routing("embed")
            assert swapped.embedding is embedding

    def test_refresh_keeps_staleness_when_nothing_refreshable(self):
        # Hash-only service, no smart preprocessing built: refresh cannot
        # make anything fresh, so the staleness set must survive.
        graph = ring_graph(8)
        with GraphService.open(graph, _config("hash")) as service:
            service.apply_updates([GraphUpdate.add_edge(100, 0)])
            assert service.refresh_routing() == 0
            assert service.updates.stale == {100, 0}

    def test_failed_server_write_keeps_layers_coherent(self):
        # Code-review regression: a StorageServerDown mid-write must not
        # leave caches serving the old record or skip staleness marking.
        import pytest as _pytest

        from repro.storage import StorageServerDown

        graph = ring_graph(12)
        with GraphService.open(graph, _config("hash")) as service:
            with service.session() as session:
                session.submit(NeighborAggregationQuery(node=0, hops=2))
                session.drain()
                for server in service.tier.servers:
                    server.fail()
                with _pytest.raises(StorageServerDown):
                    session.apply_updates([GraphUpdate.add_edge(1, 11)])
                # The graph half applied, caches dropped the dirty keys,
                # staleness is marked, and the batch counted as applied.
                assert graph.has_edge(1, 11)
                assert sum(
                    p.cache.stats.invalidations for p in service.processors
                ) >= 1
                assert service.updates.stale == {1, 11}
                assert service.updates.updates_applied == 1
                for server in service.tier.servers:
                    server.recover()
                session.submit(NeighborAggregationQuery(node=11, hops=1))
                session.drain()
                assert session.records[-1].stats.result == 3  # 10, 0 and 1


# ---------------------------------------------------------------------------
# Churn streams through sessions
# ---------------------------------------------------------------------------

class TestChurnStream:
    def test_stream_is_deterministic_and_typed(self):
        graph = ring_graph(30)
        kwargs = dict(num_hotspots=3, rounds=2, queries_per_visit=5,
                      radius=1, update_every=2, seed=5)
        first = churn_workload(graph, **kwargs)
        second = churn_workload(graph, **kwargs)
        assert [type(i).__name__ for i in first] == [
            type(i).__name__ for i in second
        ]
        pairs = [
            (a.kind, a.u, a.v) for a in first if isinstance(a, GraphUpdate)
        ]
        assert pairs == [
            (b.kind, b.u, b.v) for b in second if isinstance(b, GraphUpdate)
        ]
        queries = [i for i in first if not isinstance(i, GraphUpdate)]
        assert len(queries) == 3 * 2 * 5
        assert any(isinstance(i, GraphUpdate) for i in first)

    def test_generation_does_not_mutate_graph(self):
        graph = ring_graph(30)
        edges_before = set(graph.edges())
        churn_workload(graph, num_hotspots=2, rounds=2, queries_per_visit=4,
                       radius=1, seed=1)
        assert set(graph.edges()) == edges_before

    def test_session_stream_applies_updates_in_order(self):
        graph = ring_graph(30)
        workload = churn_workload(
            graph.copy(), num_hotspots=3, rounds=2, queries_per_visit=5,
            radius=1, update_every=2, new_node_prob=0.6, seed=5,
        )
        num_queries = sum(
            1 for i in workload if not isinstance(i, GraphUpdate)
        )
        num_updates = len(workload) - num_queries
        with GraphService.open(graph, _config("hash")) as service:
            with service.session() as session:
                submitted = session.stream(workload, batch=8)
                report = session.report()
            assert submitted == num_queries
            assert len(report.records) == num_queries
            assert service.updates.updates_applied == num_updates
            assert service.updates.nodes_added > 0

    def test_churn_replays_identically_across_schemes(self):
        base = ring_graph(40)
        results = {}
        for routing in ("hash", "embed"):
            graph = base.copy()
            workload = churn_workload(
                graph, num_hotspots=3, rounds=2, queries_per_visit=5,
                radius=1, seed=9,
            )
            with GraphService.open(graph, _config(routing)) as service:
                with service.session() as session:
                    session.stream(workload, batch=8)
                    report = session.report()
                results[routing] = (
                    len(report.records),
                    service.updates.updates_applied,
                    sorted(graph.nodes()),
                )
        assert results["hash"] == results["embed"]

    def test_removals_never_target_seed_edges(self):
        # Code-review regression: a drawn ball pair that is already
        # adjacent in the snapshot is upserted but never claimed, so no
        # removal can erode the seed topology.
        from repro.graph import ring_of_cliques

        graph = ring_of_cliques(6, 6)  # dense balls: adjacent draws likely
        seed_edges = set(graph.edges())
        removed = [
            (item.u, item.v)
            for item in churn_workload(
                graph, num_hotspots=4, rounds=3, queries_per_visit=8,
                radius=1, update_every=2, new_node_prob=0.2,
                remove_prob=0.5, seed=11,
            )
            if isinstance(item, GraphUpdate) and item.kind == "remove_edge"
        ]
        assert removed  # the shape actually exercised removals
        assert not (set(removed) & seed_edges)

    def test_invalid_parameters_rejected_eagerly(self):
        graph = ring_graph(12)
        with pytest.raises(ValueError, match="update_every"):
            churn_stream(graph, update_every=0)
        with pytest.raises(ValueError, match="must not exceed 1"):
            churn_stream(graph, new_node_prob=0.9, remove_prob=0.3)
        with pytest.raises(ValueError, match="query_new_prob"):
            churn_stream(graph, query_new_prob=1.5)
