"""Tests for the SEDGE/Giraph-like and PowerGraph-like coupled systems."""

import pytest

from repro import ClusterConfig, ETHERNET_COSTS, GRoutingCluster, GraphAssets
from repro.baselines import PowerGraphSystem, SedgeSystem
from repro.core import NeighborAggregationQuery
from repro.datasets import memetracker_like
from repro.graph import k_hop_neighborhood
from repro.workloads import hotspot_workload


@pytest.fixture(scope="module")
def setup():
    graph = memetracker_like(scale=0.05, seed=2)
    assets = GraphAssets(graph)
    queries = hotspot_workload(graph, num_hotspots=8, queries_per_hotspot=10,
                               radius=2, hops=2, seed=1, csr=assets.csr_both)
    return graph, assets, queries


class TestSedgeSystem:
    def test_runs_workload(self, setup):
        _graph, assets, queries = setup
        report = SedgeSystem(assets, num_servers=6).run(queries)
        assert len(report.records) == len(queries)
        assert report.routing == "sedge"
        assert report.makespan > 0

    def test_aggregation_results_match_ground_truth(self, setup):
        graph, assets, _queries = setup
        node = next(iter(graph.nodes()))
        query = NeighborAggregationQuery(node=node, hops=2)
        report = SedgeSystem(assets, num_servers=4).run([query])
        expected = len(k_hop_neighborhood(graph, node, 2, "both"))
        assert report.records[0].stats.result == expected

    def test_jobs_serialize(self, setup):
        _graph, assets, queries = setup
        report = SedgeSystem(assets, num_servers=4).run(queries[:10])
        spans = sorted((r.started_at, r.finished_at) for r in report.records)
        for (_s1, f1), (s2, _f2) in zip(spans, spans[1:]):
            assert s2 >= f1

    def test_barrier_cost_scales_with_servers(self, setup):
        _graph, assets, queries = setup
        small = SedgeSystem(assets, num_servers=2).run(queries[:20])
        large = SedgeSystem(assets, num_servers=12).run(queries[:20])
        assert large.mean_response_time() > small.mean_response_time()

    def test_good_partitioning_beats_hash_partitioning(self, setup):
        _graph, assets, queries = setup
        from repro.baselines import hash_partition

        metis = SedgeSystem(assets, num_servers=4).run(queries)
        hashed = SedgeSystem(
            assets, num_servers=4,
            partition_labels=hash_partition(assets.csr_both, 4),
        ).run(queries)
        assert metis.mean_response_time() < hashed.mean_response_time()

    def test_invalid_server_count(self, setup):
        _graph, assets, _queries = setup
        with pytest.raises(ValueError):
            SedgeSystem(assets, num_servers=0)


class TestPowerGraphSystem:
    def test_runs_workload(self, setup):
        _graph, assets, queries = setup
        report = PowerGraphSystem(assets, num_servers=6).run(queries)
        assert len(report.records) == len(queries)
        assert report.routing == "powergraph"

    def test_results_match_ground_truth(self, setup):
        graph, assets, _queries = setup
        node = next(iter(graph.nodes()))
        query = NeighborAggregationQuery(node=node, hops=2)
        report = PowerGraphSystem(assets, num_servers=4).run([query])
        expected = len(k_hop_neighborhood(graph, node, 2, "both"))
        assert report.records[0].stats.result == expected

    def test_faster_than_sedge(self, setup):
        # The paper's Fig 7: PowerGraph outperforms SEDGE/Giraph (async GAS
        # beats BSP barriers) but both lose to gRouting.
        _graph, assets, queries = setup
        sedge = SedgeSystem(assets, num_servers=6).run(queries)
        powergraph = PowerGraphSystem(assets, num_servers=6).run(queries)
        assert powergraph.throughput() > sedge.throughput()


class TestSystemComparison:
    def test_grouting_beats_coupled_systems(self, setup):
        # The headline claim (Fig 7): decoupled gRouting with plain hash
        # partitioning beats both coupled systems — even over Ethernet.
        graph, assets, queries = setup
        config = ClusterConfig(
            num_processors=7, num_storage_servers=4, routing="embed",
            cache_capacity_bytes=8 << 20, num_landmarks=16, min_separation=2,
            dim=6, embed_method="lmds", costs=ETHERNET_COSTS,
        )
        grouting = GRoutingCluster(graph, config, assets=assets).run(queries)
        sedge = SedgeSystem(assets, num_servers=12).run(queries)
        powergraph = PowerGraphSystem(assets, num_servers=12).run(queries)
        assert grouting.throughput() > 2 * powergraph.throughput()
        assert grouting.throughput() > 3 * sedge.throughput()
