"""Elastic cluster topology: membership epochs, bounded-movement
rebalancing, join/leave mid-session, chaos schedules, inert-topology
parity, and property-based totality/replay invariants."""

import pytest

from repro import ClusterConfig, GraphService, TopologyConfig
from repro.core import ChaosEvent, NeighborAggregationQuery
from repro.core.queries import QueryIdAllocator, query_ids_from
from repro.core.routing import HashRouting
from repro.core.topology import CHAOS_ACTIONS
from repro.graph import Graph, ring_of_cliques
from repro.workloads import poisson_arrivals, shifting_hotspot_workload


@pytest.fixture(scope="module")
def graph():
    return ring_of_cliques(8, 5)


def _config(routing="hash", **kwargs):
    defaults = dict(
        num_processors=3,
        num_storage_servers=2,
        cache_capacity_bytes=1 << 20,
        num_landmarks=6,
        min_separation=1,
        dim=3,
        embed_method="lmds",
        topology=TopologyConfig(),
    )
    defaults.update(kwargs)
    return ClusterConfig(routing=routing, **defaults)


def _queries(nodes, hops=2):
    return [NeighborAggregationQuery(node=n, hops=hops) for n in nodes]


# ---------------------------------------------------------------------------
# Config plumbing
# ---------------------------------------------------------------------------

class TestConfig:
    def test_chaos_event_validation(self):
        with pytest.raises(ValueError, match="unknown chaos action"):
            ChaosEvent(at=0.0, action="explode", target=0)
        with pytest.raises(ValueError, match="needs a target"):
            ChaosEvent(at=0.0, action="fail_server")
        with pytest.raises(ValueError, match="non-negative"):
            ChaosEvent(at=-1.0, action="add_processor")
        for action in CHAOS_ACTIONS:
            ChaosEvent(at=0.0, action=action, target=0)

    def test_topology_is_structural(self, graph):
        with GraphService.open(graph, _config()) as service:
            with pytest.raises(ValueError, match="structural"):
                service.set_routing(topology=None)
            with pytest.raises(ValueError, match="structural"):
                service.set_routing(speed_profiles=None)

    def test_no_topology_by_default(self, graph):
        with GraphService.open(graph, ClusterConfig(
            num_processors=2, num_storage_servers=2, routing="hash",
        )) as service:
            assert service.topology is None
            assert service.tier.directory is None


# ---------------------------------------------------------------------------
# Join / leave through the topology layer
# ---------------------------------------------------------------------------

class TestMembership:
    def test_join_adds_dense_id_and_serves_traffic(self, graph):
        with GraphService.open(graph, _config()) as service:
            topology = service.topology
            with service.session() as session:
                session.submit_many(_queries(range(10)))
                session.drain()
                pid = topology.add_processor()
                assert pid == 3
                assert service.router.num_processors == 4
                assert topology.epoch == 1
                session.submit_many(_queries(range(40)))
                session.drain()
                report = session.report()
            by_processor = report.per_processor_counts()
            assert by_processor.get(3, 0) > 0  # the joiner earns traffic
            warmup = topology.warmup_stats()
            assert warmup[0]["processor"] == 3
            assert warmup[0]["queries_executed"] == by_processor[3]
            # The report reflects the live membership, not the config.
            assert report.num_processors == 4

    def test_join_moves_bounded_hash_share(self, graph):
        with GraphService.open(graph, _config(routing="hash")) as service:
            topology = service.topology
            strategy = service.strategy
            assert isinstance(strategy, HashRouting)
            before = list(strategy.owner_table())
            topology.add_processor()
            after = strategy.owner_table()
            moved = sum(1 for a, b in zip(before, after) if a != b)
            # A joiner takes ~1/(P+1) of the slots and nothing else moves.
            assert moved == topology.moved_entries
            assert 0 < moved <= -(-len(after) // 4) + 3
            assert sorted(set(after)) == [0, 1, 2, 3]

    def test_leave_reassigns_only_the_leaver(self, graph):
        with GraphService.open(graph, _config(routing="hash")) as service:
            topology = service.topology
            strategy = service.strategy
            before = list(strategy.owner_table())
            topology.remove_processor(1)
            after = strategy.owner_table()
            assert all(owner != 1 for owner in after)
            # Only the leaver's slots moved.
            assert all(
                a == b for a, b in zip(before, after) if a != 1
            )
            assert topology.epoch == 1
            assert topology.events[0]["action"] == "remove_processor"

    def test_leave_requeues_backlog_to_survivors(self, graph):
        with GraphService.open(
            graph, _config(routing="hash", steal=False)
        ) as service:
            topology = service.topology
            router = service.router
            with service.session() as session:
                nodes = [n for n in range(0, 30, 3) if graph.has_node(n)]
                session.submit_many(_queries(nodes))  # hash -> processor 0
                requeued = topology.remove_processor(0)
                assert requeued == topology.events[0]["requeued"]
                session.drain()
                report = session.report()
            finished_by_0 = [r for r in report.records if r.processor == 0]
            assert len(finished_by_0) <= 1  # at most its in-flight query
            assert len(report.records) == len(nodes)

    def test_removing_last_alive_processor_with_backlog_refuses(self, graph):
        with GraphService.open(
            graph, _config(routing="hash", steal=False)
        ) as service:
            topology = service.topology
            topology.remove_processor(1)
            topology.remove_processor(2)
            with service.session() as session:
                session.submit_many(_queries(range(5)))
                # Queued + pooled work would strand with nobody left.
                with pytest.raises(RuntimeError, match="last alive"):
                    topology.remove_processor(0)
                session.drain()
                # Drained: the same removal is now legal.
                topology.remove_processor(0)
                assert sum(service.router.alive_mask()) == 0
            assert topology.epoch == 3

    def test_session_survives_join_and_leave_mid_serve(self, graph):
        # Membership changes while an open-loop serve is in flight: the
        # chaos schedule joins one processor and removes another while
        # arrivals keep landing; every query completes exactly once.
        with GraphService.open(graph, _config(routing="hash")) as service:
            with query_ids_from(QueryIdAllocator(start=7_500_000)):
                queries = _queries([n for n in range(40) if graph.has_node(n)])
            arrivals = poisson_arrivals(
                queries, rate=150_000.0, tenant="t", seed=5
            )
            service.topology.schedule([
                ChaosEvent(at=5e-5, action="add_processor"),
                ChaosEvent(at=1e-4, action="remove_processor", target=0),
            ])
            with service.session() as session:
                session.serve(arrivals)
                report = session.report()
            assert len(report.records) == len(queries)
            assert len({r.query_id for r in report.records}) == len(queries)
            assert service.topology.epoch == 2

    def test_adaptive_arm_state_survives_membership_change(self, graph):
        config = _config(
            routing="adaptive", adaptive_arms=("hash", "embed"),
            adaptive_epoch=8,
        )
        with GraphService.open(graph, config) as service:
            with service.session() as session:
                session.submit_many(_queries(range(30)))
                session.drain()
                strategy = service.strategy
                state_before = strategy.export_state()
                service.topology.add_processor()
                # Learned per-(class, arm) state is keyed by arm name and
                # survives the rebalance untouched.
                state_after = strategy.export_state()
                assert state_after["score_ewma"] == state_before["score_ewma"]
                assert state_after["pulls"] == state_before["pulls"]
                assert state_after["committed"] == state_before["committed"]
                session.submit_many(_queries(
                    n for n in range(30, 60) if graph.has_node(n)
                ))
                session.drain()


# ---------------------------------------------------------------------------
# Inert-topology parity (the bit-identical guardrail)
# ---------------------------------------------------------------------------

class TestInertTopologyParity:
    @staticmethod
    def _run(graph, topology):
        config = _config(routing="embed", topology=topology)
        with query_ids_from(QueryIdAllocator(start=9_500_000)):
            queries = shifting_hotspot_workload(
                graph, num_phases=2, queries_per_phase=40, radius=1,
                hops=2, seed=3,
            )
        with GraphService.open(graph, config) as service:
            if service.topology is not None:
                service.topology.schedule([])  # empty schedule: no process
            with service.session() as session:
                session.stream(queries)
                session.drain()
                return session.report()

    def test_idle_topology_is_bit_identical_to_none(self, graph):
        plain = self._run(graph, None)
        idle = self._run(graph, TopologyConfig())

        def key(r):
            return (r.query_id, r.processor, r.decision_time, r.enqueued_at,
                    r.started_at, r.finished_at, r.stats.cache_hits,
                    r.stats.cache_misses, r.stats.bytes_fetched,
                    r.stats.storage_requests, r.stats.result)

        assert [key(r) for r in plain.records] == [
            key(r) for r in idle.records
        ]

    def test_idle_topology_summary_has_no_downtime_keys(self, graph):
        summary = self._run(graph, TopologyConfig()).summary()
        assert "storage_downtime_s" not in summary
        assert "storage_outages" not in summary


# ---------------------------------------------------------------------------
# Property-based: random interleavings keep the tables total & replayable
# ---------------------------------------------------------------------------

class TestMembershipProperties:
    @staticmethod
    def _chaos_walk(seed):
        """One deterministic random interleaving of membership ops plus
        traffic; returns (record keys, epoch, owner tables per epoch)."""
        import numpy as np

        rng = np.random.default_rng(seed)
        graph = ring_of_cliques(6, 4)
        config = _config(routing="hash", num_processors=3)
        tables = []
        with GraphService.open(graph, config) as service:
            topology = service.topology
            router = service.router
            with query_ids_from(QueryIdAllocator(start=1_000_000)):
                waves = [
                    _queries([int(n) for n in rng.integers(0, 24, size=6)])
                    for _ in range(8)
                ]
            with service.session() as session:
                for wave in waves:
                    op = int(rng.integers(0, 4))
                    alive = router.alive_mask()
                    if op == 0 and sum(alive) >= 2:
                        victims = [
                            p for p, up in enumerate(alive) if up
                        ]
                        topology.remove_processor(
                            victims[int(rng.integers(0, len(victims)))]
                        )
                    elif op == 1 and router.num_processors < 6:
                        topology.add_processor()
                    elif op == 2:
                        topology.fail_server(
                            int(rng.integers(0, service.tier.num_servers))
                        )
                    else:
                        for server in service.tier.servers:
                            if not server.alive:
                                topology.recover_server(server.server_id)
                                break
                    strategy = service.strategy
                    tables.append(
                        (topology.epoch, list(strategy.owner_table()))
                    )
                    session.submit_many(wave)
                    session.drain()
                report = session.report()
            keys = [
                (r.query_id, r.processor, r.started_at, r.finished_at)
                for r in report.records
            ]
            return keys, topology.epoch, tables, router.alive_mask()

    @pytest.mark.parametrize("seed", [11, 23, 47])
    def test_interleavings_keep_totality_and_replay(self, seed):
        keys, epoch, tables, alive = self._chaos_walk(seed)
        # Totality: after every step, each slot names exactly one
        # processor, and the final table routes only to alive ones.
        for _epoch, table in tables:
            assert all(isinstance(owner, int) for owner in table)
        final_alive = {p for p, up in enumerate(alive) if up}
        assert set(tables[-1][1]) <= final_alive
        # Determinism: the identical walk replays bit-identically.
        keys2, epoch2, tables2, alive2 = self._chaos_walk(seed)
        assert keys == keys2
        assert epoch == epoch2
        assert tables == tables2
        assert alive == alive2


# ---------------------------------------------------------------------------
# Chaos schedules
# ---------------------------------------------------------------------------

class TestChaosSchedule:
    def test_events_fire_at_their_instants(self, graph):
        with GraphService.open(graph, _config()) as service:
            topology = service.topology
            topology.schedule([
                ChaosEvent(at=2e-4, action="fail_server", target=0),
                ChaosEvent(at=5e-4, action="recover_server", target=0),
                ChaosEvent(at=6e-4, action="add_processor"),
            ])
            service.env.run(until=1e-3)
            recorded = [
                (e["action"], e["at"]) for e in topology.events
            ]
            assert recorded == [
                ("fail_server", 2e-4),
                ("recover_server", 5e-4),
                ("add_processor", 6e-4),
            ]
            assert topology.epoch == 3
            windows = service.tier.servers[0].downtime_windows()
            assert windows == [(2e-4, 5e-4)]

    def test_redundant_fail_and_recover_are_idempotent(self, graph):
        with GraphService.open(graph, _config()) as service:
            topology = service.topology
            topology.fail_server(0)
            topology.fail_server(0)   # no-op
            topology.recover_server(0)
            topology.recover_server(0)  # no-op
            assert topology.epoch == 2
            assert len(topology.events) == 2
