"""Processor cache tests: LRU/FIFO/LFU policies, capacity, statistics."""

import pytest

from repro.core import ProcessorCache


class TestBasics:
    def test_miss_then_hit(self):
        cache = ProcessorCache(100)
        assert cache.get("a") is None
        cache.put("a", 10)
        assert cache.get("a") is True
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1

    def test_contains_has_no_side_effects(self):
        cache = ProcessorCache(100)
        cache.put("a", 10)
        assert "a" in cache
        assert cache.stats.hits == 0 and cache.stats.misses == 0

    def test_size_accounting(self):
        cache = ProcessorCache(100)
        cache.put("a", 30)
        cache.put("b", 20)
        assert cache.size_bytes == 50
        assert len(cache) == 2

    def test_reput_updates_size(self):
        cache = ProcessorCache(100)
        cache.put("a", 30)
        cache.put("a", 50)
        assert cache.size_bytes == 50
        assert len(cache) == 1

    def test_get_many_returns_missed_in_order(self):
        cache = ProcessorCache(100)
        cache.put("b", 5)
        missed = cache.get_many(["a", "b", "c"])
        assert missed == ["a", "c"]
        assert cache.stats.hits == 1
        assert cache.stats.misses == 2

    def test_put_many(self):
        cache = ProcessorCache(100)
        cache.put_many([("a", 10), ("b", 20)])
        assert cache.size_bytes == 30

    def test_clear(self):
        cache = ProcessorCache(100)
        cache.put("a", 10)
        cache.clear()
        assert len(cache) == 0
        assert cache.size_bytes == 0

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            ProcessorCache(-1)
        with pytest.raises(ValueError):
            ProcessorCache(10, policy="random")

    def test_negative_size_rejected(self):
        cache = ProcessorCache(10)
        with pytest.raises(ValueError):
            cache.put("a", -5)


class TestCapacityAndEviction:
    def test_eviction_keeps_within_capacity(self):
        cache = ProcessorCache(100)
        for i in range(20):
            cache.put(i, 10)
        assert cache.size_bytes <= 100
        assert len(cache) == 10
        assert cache.stats.evictions == 10

    def test_zero_capacity_is_no_cache(self):
        cache = ProcessorCache(0)
        cache.put("a", 1)
        assert cache.get("a") is None
        assert len(cache) == 0
        assert cache.stats.rejected == 1

    def test_oversized_record_rejected_without_flushing(self):
        cache = ProcessorCache(100)
        cache.put("small", 50)
        cache.put("huge", 500)
        assert "small" in cache
        assert "huge" not in cache
        assert cache.stats.rejected == 1

    def test_lru_evicts_least_recently_used(self):
        cache = ProcessorCache(30, policy="lru")
        cache.put("a", 10)
        cache.put("b", 10)
        cache.put("c", 10)
        cache.get("a")  # refresh a; b is now LRU
        cache.put("d", 10)
        assert "b" not in cache
        assert "a" in cache and "c" in cache and "d" in cache

    def test_fifo_ignores_recency(self):
        cache = ProcessorCache(30, policy="fifo")
        cache.put("a", 10)
        cache.put("b", 10)
        cache.put("c", 10)
        cache.get("a")  # access does not save "a" under FIFO
        cache.put("d", 10)
        assert "a" not in cache

    def test_lfu_evicts_least_frequent(self):
        cache = ProcessorCache(30, policy="lfu")
        cache.put("a", 10)
        cache.put("b", 10)
        cache.put("c", 10)
        cache.get("a")
        cache.get("a")
        cache.get("c")
        cache.put("d", 10)  # b has the lowest frequency
        assert "b" not in cache
        assert "a" in cache and "c" in cache and "d" in cache

    def test_eviction_cascade_for_large_insert(self):
        cache = ProcessorCache(100)
        for key in ("a", "b", "c", "d"):
            cache.put(key, 25)
        cache.put("big", 80)
        assert "big" in cache
        assert cache.size_bytes <= 100

    def test_hit_rate(self):
        cache = ProcessorCache(100)
        cache.put("a", 1)
        cache.get("a")
        cache.get("a")
        cache.get("zzz")
        assert cache.stats.hit_rate() == pytest.approx(2 / 3)

    def test_empty_hit_rate_zero(self):
        assert ProcessorCache(10).stats.hit_rate() == 0.0


class TestLruOrderProperty:
    def test_eviction_order_matches_access_order(self):
        cache = ProcessorCache(50, policy="lru")
        for i in range(5):
            cache.put(i, 10)
        # Touch in scrambled order; eviction must follow it.
        for key in (3, 1, 4, 0, 2):
            cache.get(key)
        evicted = []
        for new in range(100, 105):
            cache.put(new, 10)
            for old in (3, 1, 4, 0, 2):
                if old not in cache and old not in evicted:
                    evicted.append(old)
        assert evicted == [3, 1, 4, 0, 2]
