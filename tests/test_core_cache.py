"""Processor cache tests: LRU/FIFO/LFU policies, capacity, statistics."""

import numpy as np
import pytest

from repro.core import ProcessorCache
from repro.core.cache import LFU_COMPACT_FACTOR, LFU_COMPACT_SLACK


class TestBasics:
    def test_miss_then_hit(self):
        cache = ProcessorCache(100)
        assert cache.get("a") is None
        cache.put("a", 10)
        assert cache.get("a") is True
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1

    def test_contains_has_no_side_effects(self):
        cache = ProcessorCache(100)
        cache.put("a", 10)
        assert "a" in cache
        assert cache.stats.hits == 0 and cache.stats.misses == 0

    def test_size_accounting(self):
        cache = ProcessorCache(100)
        cache.put("a", 30)
        cache.put("b", 20)
        assert cache.size_bytes == 50
        assert len(cache) == 2

    def test_reput_updates_size(self):
        cache = ProcessorCache(100)
        cache.put("a", 30)
        cache.put("a", 50)
        assert cache.size_bytes == 50
        assert len(cache) == 1

    def test_get_many_returns_missed_in_order(self):
        cache = ProcessorCache(100)
        cache.put("b", 5)
        missed = cache.get_many(["a", "b", "c"])
        assert missed == ["a", "c"]
        assert cache.stats.hits == 1
        assert cache.stats.misses == 2

    def test_put_many(self):
        cache = ProcessorCache(100)
        cache.put_many([("a", 10), ("b", 20)])
        assert cache.size_bytes == 30

    def test_clear(self):
        cache = ProcessorCache(100)
        cache.put("a", 10)
        cache.clear()
        assert len(cache) == 0
        assert cache.size_bytes == 0

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            ProcessorCache(-1)
        with pytest.raises(ValueError):
            ProcessorCache(10, policy="random")

    def test_negative_size_rejected(self):
        cache = ProcessorCache(10)
        with pytest.raises(ValueError):
            cache.put("a", -5)


class TestZeroCapacityRegression:
    # Satellite regression: with capacity_bytes == 0, "nothing is admitted"
    # must hold for zero-size records too — ``size > capacity_bytes`` is
    # false for size == 0 and the record used to slip in.
    @pytest.mark.parametrize("policy", ["lru", "fifo", "lfu"])
    def test_zero_size_record_rejected_at_zero_capacity(self, policy):
        cache = ProcessorCache(0, policy=policy)
        cache.put("a", 0)
        assert "a" not in cache
        assert len(cache) == 0
        assert cache.stats.insertions == 0
        assert cache.stats.rejected == 1
        assert cache.get("a") is None  # every probe misses

    @pytest.mark.parametrize("policy", ["lru", "fifo", "lfu"])
    def test_positive_size_record_rejected_at_zero_capacity(self, policy):
        cache = ProcessorCache(0, policy=policy)
        cache.put("a", 8)
        assert "a" not in cache
        assert cache.stats.rejected == 1
        assert cache.size_bytes == 0

    def test_zero_size_records_admitted_with_capacity(self):
        cache = ProcessorCache(10)
        cache.put("a", 0)
        assert "a" in cache
        assert cache.size_bytes == 0


class TestPutManyValidationRegression:
    # Satellite regression: put_many(keys_array) without sizes used to die
    # unpacking int64 scalars with an opaque TypeError.
    def test_array_without_sizes_raises_clear_error(self):
        cache = ProcessorCache(100)
        with pytest.raises(ValueError, match="sizes"):
            cache.put_many(np.array([1, 2, 3], dtype=np.int64))
        assert len(cache) == 0

    def test_error_names_both_conventions(self):
        cache = ProcessorCache(100)
        with pytest.raises(ValueError, match=r"\(key, size\)"):
            cache.put_many(np.array([1], dtype=np.int64))

    def test_sizes_with_non_array_keys_raises(self):
        cache = ProcessorCache(100)
        with pytest.raises(ValueError, match="aligned ndarrays"):
            cache.put_many([1, 2], sizes=np.array([3, 4], dtype=np.int64))

    def test_mismatched_lengths_raise(self):
        cache = ProcessorCache(100)
        with pytest.raises(ValueError, match="length mismatch"):
            cache.put_many(np.array([1, 2], dtype=np.int64),
                           np.array([3], dtype=np.int64))


class TestDuplicateProbeRegression:
    # Satellite regression: duplicate keys within one probe batch used to
    # double-count hits/misses and re-emit the duplicate into the missed
    # output, triggering duplicate downstream storage fetches.
    @pytest.mark.parametrize("policy", ["lru", "fifo", "lfu"])
    def test_duplicates_count_once_per_batch_array(self, policy):
        cache = ProcessorCache(100, policy=policy)
        cache.put(2, 5)
        keys = np.array([3, 2, 3, 2, 1], dtype=np.int64)
        missed = cache.get_many(keys)
        assert missed.tolist() == [3, 1]  # first-occurrence order, deduped
        assert cache.stats.hits == 1
        assert cache.stats.misses == 2

    @pytest.mark.parametrize("policy", ["lru", "fifo", "lfu"])
    def test_duplicates_count_once_per_batch_list(self, policy):
        cache = ProcessorCache(100, policy=policy)
        cache.put("b", 5)
        missed = cache.get_many(["a", "b", "a", "b"])
        assert missed == ["a"]
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1

    def test_lfu_duplicate_hits_bump_count_once(self):
        cache = ProcessorCache(30, policy="lfu")
        cache.put("a", 10)
        cache.put("b", 10)
        cache.put("c", 10)
        cache.get_many(["b", "b", "b"])  # one logical probe of {b}
        cache.get_many(["c"])
        cache.get_many(["c"])
        cache.put("d", 10)  # a: 1, b: 2, c: 3 -> a evicts
        assert "a" not in cache
        assert "b" in cache and "c" in cache

    def test_duplicate_frontier_fetches_each_record_once(self):
        # The gather-path consequence: put_many on the deduped missed set
        # admits (and the storage tier fetches) each record once.
        cache = ProcessorCache(100)
        missed = cache.get_many(np.array([7, 7, 9], dtype=np.int64))
        assert missed.tolist() == [7, 9]
        cache.put_many(missed, np.full(missed.size, 10, dtype=np.int64))
        assert cache.stats.insertions == 2
        assert cache.size_bytes == 20


class TestInvalidateMany:
    @pytest.mark.parametrize("policy", ["lru", "fifo", "lfu"])
    def test_removes_entries_and_bytes(self, policy):
        cache = ProcessorCache(100, policy=policy)
        for key in range(5):
            cache.put(key, 10)
        removed = cache.invalidate_many(np.array([1, 3, 99], dtype=np.int64))
        assert removed == 2
        assert cache.stats.invalidations == 2
        assert cache.size_bytes == 30
        assert 1 not in cache and 3 not in cache
        assert 0 in cache and 2 in cache and 4 in cache

    @pytest.mark.parametrize("policy", ["lru", "fifo", "lfu"])
    def test_not_counted_as_eviction_or_miss(self, policy):
        cache = ProcessorCache(100, policy=policy)
        cache.put("a", 10)
        cache.invalidate_many(["a"])
        assert cache.stats.evictions == 0
        assert cache.stats.misses == 0
        assert cache.stats.invalidations == 1

    def test_lfu_survives_invalidate_readmit_evict_cycle(self):
        # The heap may hold snapshots of invalidated keys; they must be
        # skipped at eviction and the freq restart must not resurrect the
        # old count.
        cache = ProcessorCache(30, policy="lfu")
        cache.put("a", 10)
        for _ in range(5):
            cache.get("a")  # a's count climbs to 6
        cache.put("b", 10)
        cache.put("c", 10)
        cache.invalidate_many(["a"])
        cache.put("a", 10)  # readmitted: count restarts at 1
        cache.get("b")
        cache.get("c")
        cache.put("d", 10)  # a (count 1) must evict despite old snapshots
        assert "a" not in cache
        assert "b" in cache and "c" in cache and "d" in cache

    def test_lfu_heap_compacts_after_mass_invalidation(self):
        cache = ProcessorCache(10_000, policy="lfu")
        for key in range(500):
            cache.put(key, 10)
        for _ in range(3):
            cache.get_many(list(range(500)))
        cache.invalidate_many(list(range(495)))
        bound = LFU_COMPACT_FACTOR * len(cache) + LFU_COMPACT_SLACK
        assert len(cache._heap) <= bound

    def test_invalidate_on_empty_cache_is_noop(self):
        cache = ProcessorCache(100)
        assert cache.invalidate_many([1, 2, 3]) == 0
        assert cache.stats.invalidations == 0


class TestCapacityAndEviction:
    def test_eviction_keeps_within_capacity(self):
        cache = ProcessorCache(100)
        for i in range(20):
            cache.put(i, 10)
        assert cache.size_bytes <= 100
        assert len(cache) == 10
        assert cache.stats.evictions == 10

    def test_zero_capacity_is_no_cache(self):
        cache = ProcessorCache(0)
        cache.put("a", 1)
        assert cache.get("a") is None
        assert len(cache) == 0
        assert cache.stats.rejected == 1

    def test_oversized_record_rejected_without_flushing(self):
        cache = ProcessorCache(100)
        cache.put("small", 50)
        cache.put("huge", 500)
        assert "small" in cache
        assert "huge" not in cache
        assert cache.stats.rejected == 1

    def test_lru_evicts_least_recently_used(self):
        cache = ProcessorCache(30, policy="lru")
        cache.put("a", 10)
        cache.put("b", 10)
        cache.put("c", 10)
        cache.get("a")  # refresh a; b is now LRU
        cache.put("d", 10)
        assert "b" not in cache
        assert "a" in cache and "c" in cache and "d" in cache

    def test_fifo_ignores_recency(self):
        cache = ProcessorCache(30, policy="fifo")
        cache.put("a", 10)
        cache.put("b", 10)
        cache.put("c", 10)
        cache.get("a")  # access does not save "a" under FIFO
        cache.put("d", 10)
        assert "a" not in cache

    def test_lfu_evicts_least_frequent(self):
        cache = ProcessorCache(30, policy="lfu")
        cache.put("a", 10)
        cache.put("b", 10)
        cache.put("c", 10)
        cache.get("a")
        cache.get("a")
        cache.get("c")
        cache.put("d", 10)  # b has the lowest frequency
        assert "b" not in cache
        assert "a" in cache and "c" in cache and "d" in cache

    def test_eviction_cascade_for_large_insert(self):
        cache = ProcessorCache(100)
        for key in ("a", "b", "c", "d"):
            cache.put(key, 25)
        cache.put("big", 80)
        assert "big" in cache
        assert cache.size_bytes <= 100

    def test_hit_rate(self):
        cache = ProcessorCache(100)
        cache.put("a", 1)
        cache.get("a")
        cache.get("a")
        cache.get("zzz")
        assert cache.stats.hit_rate() == pytest.approx(2 / 3)

    def test_empty_hit_rate_zero(self):
        assert ProcessorCache(10).stats.hit_rate() == 0.0


class TestArrayNativeProbes:
    def test_get_many_ndarray_returns_ndarray_missed_in_order(self):
        cache = ProcessorCache(100)
        cache.put(2, 5)
        missed = cache.get_many(np.array([1, 2, 3], dtype=np.int64))
        assert isinstance(missed, np.ndarray)
        assert missed.dtype == np.int64
        assert missed.tolist() == [1, 3]
        assert cache.stats.hits == 1
        assert cache.stats.misses == 2

    def test_get_many_empty_ndarray(self):
        cache = ProcessorCache(100)
        missed = cache.get_many(np.empty(0, dtype=np.int64))
        assert isinstance(missed, np.ndarray)
        assert missed.size == 0

    def test_put_many_array_form(self):
        cache = ProcessorCache(100)
        cache.put_many(np.array([7, 8], dtype=np.int64),
                       np.array([10, 20], dtype=np.int64))
        assert cache.size_bytes == 30
        # Array-admitted keys are plain ints: probing by int hits.
        assert cache.get_many([7, 8]) == []

    def test_array_and_scalar_probes_share_keys(self):
        cache = ProcessorCache(100)
        cache.put(5, 10)
        assert cache.get_many(np.array([5], dtype=np.int64)).size == 0
        cache.put_many(np.array([6], dtype=np.int64),
                       np.array([10], dtype=np.int64))
        assert cache.get(6) is True

    def test_get_many_recency_matches_scalar_gets(self):
        batched = ProcessorCache(30, policy="lru")
        scalar = ProcessorCache(30, policy="lru")
        for cache in (batched, scalar):
            for key in ("a", "b", "c"):
                cache.put(key, 10)
        batched.get_many(["a", "b"])
        scalar.get("a")
        scalar.get("b")
        for cache in (batched, scalar):
            cache.put("d", 10)
        assert ("c" in batched) == ("c" in scalar)
        assert "c" not in batched  # c was the only untouched key


class TestLfuHeapBound:
    def test_heap_bounded_across_long_hit_evict_cycle(self):
        # Satellite regression: the LFU snapshot heap must stay O(entries)
        # under sustained churn, not O(total hits).
        cache = ProcessorCache(100, policy="lfu")
        bound = LFU_COMPACT_FACTOR * 10 + LFU_COMPACT_SLACK + 10
        for round_ in range(200):
            for key in range(10):
                cache.put((round_, key), 10)  # forces steady eviction
            for _ in range(20):
                cache.get_many([(round_, key) for key in range(10)])
            assert len(cache._heap) <= bound, f"heap grew at round {round_}"
        assert cache.stats.evictions > 0

    def test_hot_hits_do_not_touch_heap(self):
        cache = ProcessorCache(100, policy="lfu")
        for key in range(5):
            cache.put(key, 10)
        heap_size = len(cache._heap)
        for _ in range(50):
            cache.get_many(list(range(5)))
        assert len(cache._heap) == heap_size

    def test_eviction_respects_frequencies_after_push_free_hits(self):
        cache = ProcessorCache(30, policy="lfu")
        cache.put("a", 10)
        cache.put("b", 10)
        cache.put("c", 10)
        cache.get_many(["a", "a", "c"])  # b stays at count 1
        cache.put("d", 10)
        assert "b" not in cache
        assert "a" in cache and "c" in cache and "d" in cache

    def test_lfu_survives_evict_readmit_cycles(self):
        cache = ProcessorCache(20, policy="lfu")
        cache.put("hot", 10)
        for _ in range(5):
            cache.get("hot")
        for i in range(10):
            cache.put(("cold", i), 10)  # each churns the second slot
        assert "hot" in cache  # high count protects it throughout
        assert cache.stats.evictions == 9


class TestLruOrderProperty:
    def test_eviction_order_matches_access_order(self):
        cache = ProcessorCache(50, policy="lru")
        for i in range(5):
            cache.put(i, 10)
        # Touch in scrambled order; eviction must follow it.
        for key in (3, 1, 4, 0, 2):
            cache.get(key)
        evicted = []
        for new in range(100, 105):
            cache.put(new, 10)
            for old in (3, 1, 4, 0, 2):
                if old not in cache and old not in evicted:
                    evicted.append(old)
        assert evicted == [3, 1, 4, 0, 2]
