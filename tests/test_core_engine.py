"""Engine correctness: simulated query results must match ground truth."""

import numpy as np
import pytest

from repro import ClusterConfig, GRoutingCluster, GraphAssets
from repro.core import (
    NeighborAggregationQuery,
    RandomWalkQuery,
    ReachabilityQuery,
)
from repro.graph import (
    bidirectional_reachability,
    erdos_renyi,
    k_hop_neighborhood,
    ring_of_cliques,
)
from repro.workloads import hotspot_workload


@pytest.fixture(scope="module")
def random_graph():
    return erdos_renyi(300, 1200, seed=7)


@pytest.fixture(scope="module")
def random_assets(random_graph):
    return GraphAssets(random_graph)


def _run_single(graph, assets, query, **config_kwargs):
    config = ClusterConfig(
        num_processors=2,
        num_storage_servers=2,
        routing="hash",
        cache_capacity_bytes=1 << 20,
        **config_kwargs,
    )
    cluster = GRoutingCluster(graph, config, assets=assets)
    report = cluster.run([query])
    assert len(report.records) == 1
    return report.records[0]


class TestAggregationCorrectness:
    @pytest.mark.parametrize("node", [0, 13, 77, 250])
    @pytest.mark.parametrize("hops", [1, 2, 3])
    def test_count_matches_ground_truth(self, random_graph, random_assets,
                                        node, hops):
        record = _run_single(
            random_graph, random_assets,
            NeighborAggregationQuery(node=node, hops=hops),
        )
        expected = len(k_hop_neighborhood(random_graph, node, hops, "both"))
        assert record.stats.result == expected

    def test_eq8_invariant_hits_plus_misses_is_neighborhood(
        self, random_graph, random_assets
    ):
        # Eq. 8/9: per aggregation query, hits + misses == |N_h(q)|.
        query = NeighborAggregationQuery(node=42, hops=2)
        record = _run_single(random_graph, random_assets, query)
        expected = len(k_hop_neighborhood(random_graph, 42, 2, "both"))
        assert record.stats.cache_hits + record.stats.cache_misses == expected

    def test_isolated_node_counts_zero(self):
        from repro.graph import Graph

        g = Graph()
        g.add_edge(0, 1)
        g.add_node(5)
        assets = GraphAssets(g)
        record = _run_single(g, assets, NeighborAggregationQuery(node=5, hops=2))
        assert record.stats.result == 0
        assert record.stats.nodes_touched == 0


class TestRandomWalkCorrectness:
    def test_walk_takes_requested_steps(self, random_graph, random_assets):
        record = _run_single(
            random_graph, random_assets,
            RandomWalkQuery(node=3, steps=5, seed=11),
        )
        assert record.stats.result == 5

    def test_walk_touches_at_most_steps_records(self, random_graph,
                                                 random_assets):
        record = _run_single(
            random_graph, random_assets,
            RandomWalkQuery(node=3, steps=8, seed=2),
        )
        assert record.stats.nodes_touched <= 8

    def test_restart_prob_one_touches_nothing(self, random_graph,
                                              random_assets):
        record = _run_single(
            random_graph, random_assets,
            RandomWalkQuery(node=3, steps=6, restart_prob=1.0, seed=1),
        )
        # Every step restarts to the source; no neighbor records needed.
        assert record.stats.nodes_touched == 0


class TestReachabilityCorrectness:
    @pytest.mark.parametrize("seed", [1, 2, 3, 4])
    def test_matches_bidirectional_ground_truth(self, random_graph,
                                                random_assets, seed):
        rng = np.random.default_rng(seed)
        for _ in range(10):
            s, t = rng.integers(0, 300, size=2)
            hops = int(rng.integers(1, 5))
            record = _run_single(
                random_graph, random_assets,
                ReachabilityQuery(node=int(s), target=int(t), hops=hops),
            )
            expected = bidirectional_reachability(
                random_graph, int(s), int(t), hops
            )
            assert record.stats.result == expected, (s, t, hops)

    def test_same_node_reachable(self, random_graph, random_assets):
        record = _run_single(
            random_graph, random_assets,
            ReachabilityQuery(node=9, target=9, hops=0),
        )
        assert record.stats.result is True

    def test_missing_target_unreachable(self, random_graph, random_assets):
        record = _run_single(
            random_graph, random_assets,
            ReachabilityQuery(node=9, target=123456, hops=3),
        )
        assert record.stats.result is False

    def test_clique_ring_distances(self):
        g = ring_of_cliques(4, 5)
        assets = GraphAssets(g)
        # Bridgeheads 0 and 5 are adjacent; interior nodes need more hops.
        r = _run_single(g, assets, ReachabilityQuery(node=0, target=5, hops=1))
        assert r.stats.result is True
        r = _run_single(g, assets, ReachabilityQuery(node=1, target=6, hops=2))
        assert r.stats.result is False
        r = _run_single(g, assets, ReachabilityQuery(node=1, target=6, hops=3))
        assert r.stats.result is True


class TestCacheInteraction:
    def test_repeat_query_hits_cache(self, random_graph, random_assets):
        config = ClusterConfig(num_processors=1, num_storage_servers=1,
                               routing="hash", cache_capacity_bytes=1 << 20)
        cluster = GRoutingCluster(random_graph, config, assets=random_assets)
        q1 = NeighborAggregationQuery(node=10, hops=2)
        q2 = NeighborAggregationQuery(node=10, hops=2)
        report = cluster.run([q1, q2])
        first, second = report.records
        assert first.stats.cache_misses > 0
        assert second.stats.cache_misses == 0
        assert second.stats.cache_hits == first.stats.cache_hits + first.stats.cache_misses

    def test_second_query_faster_with_cache(self, random_graph, random_assets):
        config = ClusterConfig(num_processors=1, num_storage_servers=1,
                               routing="hash", cache_capacity_bytes=1 << 20)
        cluster = GRoutingCluster(random_graph, config, assets=random_assets)
        q1 = NeighborAggregationQuery(node=10, hops=2)
        q2 = NeighborAggregationQuery(node=10, hops=2)
        report = cluster.run([q1, q2])
        first, second = report.records
        assert second.response_time < first.response_time

    def test_no_cache_mode_never_hits(self, random_graph, random_assets):
        config = ClusterConfig(num_processors=1, num_storage_servers=1,
                               routing="no_cache", cache_capacity_bytes=1 << 20)
        cluster = GRoutingCluster(random_graph, config, assets=random_assets)
        q1 = NeighborAggregationQuery(node=10, hops=2)
        q2 = NeighborAggregationQuery(node=10, hops=2)
        report = cluster.run([q1, q2])
        assert report.total_cache_hits() == 0
        assert report.records[0].response_time == pytest.approx(
            report.records[1].response_time, rel=0.2
        )


class TestWorkloadExecution:
    def test_mixed_workload_all_complete(self, random_graph, random_assets):
        queries = hotspot_workload(random_graph, num_hotspots=6,
                                   queries_per_hotspot=6, radius=1, hops=2,
                                   seed=5, csr=random_assets.csr_both)
        config = ClusterConfig(num_processors=3, num_storage_servers=2,
                               routing="hash", cache_capacity_bytes=1 << 20)
        report = GRoutingCluster(random_graph, config,
                                 assets=random_assets).run(queries)
        assert len(report.records) == 36
        kinds = {r.kind for r in report.records}
        assert kinds == {
            "NeighborAggregationQuery",
            "RandomWalkQuery",
            "ReachabilityQuery",
        }
