"""Log-structured KV store tests, including cleaner behaviour."""

import pytest

from repro.storage import KVStoreError, LogStructuredStore


class TestBasicOperations:
    def test_put_get(self):
        store = LogStructuredStore()
        store.put(1, b"hello")
        assert store.get(1) == b"hello"

    def test_get_missing_raises(self):
        store = LogStructuredStore()
        with pytest.raises(KeyError):
            store.get(99)

    def test_contains_and_len(self):
        store = LogStructuredStore()
        store.put(1, b"a")
        store.put(2, b"b")
        assert 1 in store and 2 in store and 3 not in store
        assert len(store) == 2

    def test_overwrite_returns_latest(self):
        store = LogStructuredStore()
        store.put(1, b"old")
        store.put(1, b"new")
        assert store.get(1) == b"new"
        assert len(store) == 1

    def test_delete(self):
        store = LogStructuredStore()
        store.put(1, b"x")
        store.delete(1)
        assert 1 not in store
        with pytest.raises(KeyError):
            store.delete(1)

    def test_multiget_skips_missing(self):
        store = LogStructuredStore()
        store.put(1, b"a")
        store.put(3, b"c")
        assert store.multiget([1, 2, 3]) == {1: b"a", 3: b"c"}

    def test_non_bytes_value_rejected(self):
        store = LogStructuredStore()
        with pytest.raises(KVStoreError):
            store.put(1, "not bytes")


class TestLogStructure:
    def test_segments_roll_over(self):
        store = LogStructuredStore(segment_bytes=100)
        for key in range(10):
            store.put(key, b"x" * 40)
        assert store.num_segments > 1

    def test_value_larger_than_segment_still_stored(self):
        store = LogStructuredStore(segment_bytes=10)
        store.put(1, b"y" * 100)
        assert store.get(1) == b"y" * 100

    def test_live_bytes_tracks_overwrites(self):
        store = LogStructuredStore(segment_bytes=1 << 16)
        store.put(1, b"a" * 100)
        assert store.live_bytes() == 100
        store.put(1, b"b" * 50)
        assert store.live_bytes() == 50

    def test_utilization_degrades_then_cleaner_runs(self):
        store = LogStructuredStore(segment_bytes=1 << 10, clean_threshold=0.5)
        for _ in range(20):
            store.put(1, b"z" * 200)  # same key: churn creates dead bytes
        assert store.cleanings >= 1
        # After cleaning, utilization is back above the threshold.
        assert store.utilization() >= 0.5
        assert store.get(1) == b"z" * 200

    def test_cleaner_preserves_all_live_data(self):
        store = LogStructuredStore(segment_bytes=256, clean_threshold=0.6)
        expected = {}
        for key in range(50):
            value = bytes([key % 251]) * (key % 37 + 1)
            store.put(key, value)
            expected[key] = value
        for key in range(0, 50, 2):  # churn half the keys
            value = b"updated" + bytes([key % 251])
            store.put(key, value)
            expected[key] = value
        for key, value in expected.items():
            assert store.get(key) == value

    def test_empty_store_utilization_is_one(self):
        assert LogStructuredStore().utilization() == 1.0

    def test_bad_parameters_rejected(self):
        with pytest.raises(KVStoreError):
            LogStructuredStore(segment_bytes=0)
        with pytest.raises(KVStoreError):
            LogStructuredStore(clean_threshold=1.5)
