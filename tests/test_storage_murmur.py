"""MurmurHash3 verified against the canonical test vectors."""

import pytest

from repro.storage import hash_node_id, murmur3_32


# Canonical vectors for MurmurHash3 x86 32-bit (from the reference
# implementation's test suite and widely cross-checked ports).
VECTORS = [
    (b"", 0, 0x00000000),
    (b"", 1, 0x514E28B7),
    (b"", 0xFFFFFFFF, 0x81F16F39),
    (b"a", 0, 0x3C2569B2),
    (b"aaaa", 0x9747B28C, 0x5A97808A),
    (b"abc", 0, 0xB3DD93FA),
    (b"Hello, world!", 0, 0xC0363E43),
    (b"Hello, world!", 0x9747B28C, 0x24884CBA),
    (b"The quick brown fox jumps over the lazy dog", 0x9747B28C, 0x2FA826CD),
]


@pytest.mark.parametrize("data,seed,expected", VECTORS)
def test_reference_vectors(data, seed, expected):
    assert murmur3_32(data, seed) == expected


def test_output_is_32_bit():
    for i in range(100):
        value = murmur3_32(str(i).encode())
        assert 0 <= value < 2**32


def test_deterministic():
    assert murmur3_32(b"stable") == murmur3_32(b"stable")


def test_seed_changes_output():
    assert murmur3_32(b"key", 0) != murmur3_32(b"key", 1)


def test_hash_node_id_spreads_sequential_ids():
    # Sequential node ids must not collapse onto few buckets: measure
    # bucket spread over 4 servers for 10k sequential ids.
    buckets = [0] * 4
    for node in range(10_000):
        buckets[hash_node_id(node) % 4] += 1
    for count in buckets:
        assert 2200 <= count <= 2800  # within ~12% of the 2500 ideal


def test_hash_node_id_negative_ids():
    # Node ids are signed; hashing must accept the full int64 range.
    assert 0 <= hash_node_id(-1) < 2**32
    assert hash_node_id(-1) != hash_node_id(1)
