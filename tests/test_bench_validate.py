"""Artifact metadata-contract validator (what CI runs over bench_results)."""

import json
from pathlib import Path

from repro.bench.validate import (
    REQUIRED_METADATA,
    main,
    validate_artifact,
    validate_results_dir,
)

GOOD = {
    "title": "t",
    "headers": ["h"],
    "rows": [[1]],
    "generated_at": "2026-01-01 00:00:00",
    "metadata": {
        "wall_clock_seconds": 0.5,
        "kernel_events": 1000,
        "events_per_second": 2000,
    },
}


def write(tmp_path: Path, name: str, payload) -> Path:
    path = tmp_path / name
    path.write_text(payload if isinstance(payload, str) else json.dumps(payload))
    return path


class TestValidateArtifact:
    def test_conforming_artifact_passes(self, tmp_path):
        assert validate_artifact(write(tmp_path, "good.json", GOOD)) == []

    def test_invalid_json_fails(self, tmp_path):
        problems = validate_artifact(write(tmp_path, "bad.json", "{not json"))
        assert len(problems) == 1
        assert "invalid JSON" in problems[0]

    def test_non_object_fails(self, tmp_path):
        problems = validate_artifact(write(tmp_path, "list.json", [1, 2]))
        assert "JSON object" in problems[0]

    def test_missing_metadata_block_fails(self, tmp_path):
        payload = {k: v for k, v in GOOD.items() if k != "metadata"}
        problems = validate_artifact(write(tmp_path, "nometa.json", payload))
        assert any("missing metadata block" in p for p in problems)

    def test_each_required_metadata_key_enforced(self, tmp_path):
        for key in REQUIRED_METADATA:
            payload = dict(GOOD)
            payload["metadata"] = {
                k: v for k, v in GOOD["metadata"].items() if k != key
            }
            problems = validate_artifact(
                write(tmp_path, f"missing_{key}.json", payload)
            )
            assert any(f"metadata.{key}" in p for p in problems)

    def test_non_numeric_metadata_fails(self, tmp_path):
        payload = dict(GOOD)
        payload["metadata"] = dict(GOOD["metadata"],
                                   wall_clock_seconds="fast")
        problems = validate_artifact(write(tmp_path, "strmeta.json", payload))
        assert any("wall_clock_seconds" in p for p in problems)
        # Booleans are ints in Python but not numbers in the contract.
        payload["metadata"] = dict(GOOD["metadata"], kernel_events=True)
        problems = validate_artifact(write(tmp_path, "boolmeta.json", payload))
        assert any("kernel_events" in p for p in problems)

    def test_missing_payload_keys_fail(self, tmp_path):
        payload = {"metadata": dict(GOOD["metadata"])}
        problems = validate_artifact(write(tmp_path, "norows.json", payload))
        joined = "\n".join(problems)
        for key in ("title", "headers", "rows"):
            assert repr(key) in joined


class TestValidateResultsDir:
    def test_mixed_directory_reports_only_bad(self, tmp_path):
        write(tmp_path, "good.json", GOOD)
        write(tmp_path, "bad.json", "{")
        problems = validate_results_dir(tmp_path)
        assert len(problems) == 1
        assert problems[0].startswith("bad.json")

    def test_missing_or_empty_directory_fails(self, tmp_path):
        assert validate_results_dir(tmp_path / "absent")
        assert any(
            "no *.json" in p for p in validate_results_dir(tmp_path)
        )

    def test_committed_artifacts_conform(self):
        """The contract holds for everything committed in bench_results —
        the same check CI's bench-artifacts-validate step runs."""
        results = Path(__file__).resolve().parent.parent / "bench_results"
        assert validate_results_dir(results) == []


class TestCli:
    def test_exit_codes(self, tmp_path, capsys):
        write(tmp_path, "good.json", GOOD)
        assert main(["validate", str(tmp_path)]) == 0
        assert "OK 1 artifacts" in capsys.readouterr().out
        write(tmp_path, "bad.json", "{")
        assert main(["validate", str(tmp_path)]) == 1
        assert "FAIL bad.json" in capsys.readouterr().err
