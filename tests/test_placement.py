"""Dynamic placement subsystem: heat tracking, the placement directory,
replica-aware read/write routing, the manager's plan/execute loop,
replica coherence under failure injection, and empty-directory parity."""

from types import SimpleNamespace

import numpy as np
import pytest

from repro import ClusterConfig, GraphService, GraphUpdate
from repro.core import NeighborAggregationQuery, PlacementConfig
from repro.core.queries import QueryIdAllocator, query_ids_from
from repro.graph import Graph
from repro.storage import (
    HeatTracker,
    PlacementDirectory,
    StorageServerDown,
    pick_read_replica,
    record_for_node,
)
from repro.workloads import shifting_hotspot_workload


def ring_graph(n=12):
    graph = Graph()
    for i in range(n):
        graph.add_edge(i, (i + 1) % n)
    return graph


def _config(routing="hash", **kwargs):
    defaults = dict(
        num_processors=3,
        num_storage_servers=2,
        cache_capacity_bytes=1 << 20,
        num_landmarks=6,
        min_separation=1,
        dim=3,
        embed_method="lmds",
    )
    defaults.update(kwargs)
    return ClusterConfig(routing=routing, **defaults)


#: A manager that exists (directory + heat attached, loop running) but
#: whose thresholds can never fire — the inert half of the parity tests.
INERT = PlacementConfig(
    interval_s=1e-4,
    half_life_s=1e-3,
    heat_threshold=float("inf"),
    replicate_threshold=float("inf"),
    release_fraction=0.0,
)


# ---------------------------------------------------------------------------
# Heat tracking
# ---------------------------------------------------------------------------

class TestHeatTracker:
    def test_half_life_decay(self):
        heat = HeatTracker(half_life_s=2.0, size=8)
        heat.touch(np.array([3]), now=0.0)
        assert heat.heat_of(3, 0.0) == pytest.approx(1.0)
        assert heat.heat_of(3, 2.0) == pytest.approx(0.5)
        assert heat.heat_of(3, 4.0) == pytest.approx(0.25)
        assert heat.heat_of(5, 4.0) == 0.0

    def test_touch_decays_then_accumulates(self):
        heat = HeatTracker(half_life_s=1.0, size=4)
        heat.touch(np.array([1]), now=0.0)
        heat.touch(np.array([1]), now=1.0, weight=2.0)
        # 1.0 decayed one half-life (0.5), plus the new weight.
        assert heat.heat_of(1, 1.0) == pytest.approx(2.5)
        assert heat.touches == 2

    def test_grows_to_fit_new_keys(self):
        heat = HeatTracker(half_life_s=1.0, size=2)
        heat.touch(np.array([0]), now=0.0)
        heat.touch(np.array([100]), now=0.0)
        assert len(heat) >= 101
        assert heat.heat_of(0, 0.0) == pytest.approx(1.0)
        assert heat.heat_of(100, 0.0) == pytest.approx(1.0)

    def test_top_k_orders_and_thresholds(self):
        heat = HeatTracker(half_life_s=10.0, size=8)
        heat.touch(np.array([2]), now=0.0, weight=5.0)
        heat.touch(np.array([4]), now=0.0, weight=9.0)
        heat.touch(np.array([6]), now=0.0, weight=1.0)
        idx, heats = heat.top_k(2, now=0.0)
        assert idx.tolist() == [4, 2]
        assert heats.tolist() == pytest.approx([9.0, 5.0])
        idx, _ = heat.top_k(8, now=0.0, threshold=4.0)
        assert set(idx.tolist()) == {2, 4}
        idx, _ = heat.top_k(8, now=0.0, threshold=float("inf"))
        assert idx.size == 0

    def test_snapshot_is_read_only(self):
        heat = HeatTracker(half_life_s=1.0, size=4)
        heat.touch(np.array([1]), now=0.0)
        snap = heat.snapshot(3.0)
        assert snap[1] == pytest.approx(0.125)
        # Stamps untouched: the same read later decays from t=0, not t=3.
        assert heat.heat_of(1, 3.0) == pytest.approx(0.125)

    def test_rejects_bad_half_life(self):
        with pytest.raises(ValueError, match="half-life"):
            HeatTracker(half_life_s=0.0)


# ---------------------------------------------------------------------------
# The placement directory
# ---------------------------------------------------------------------------

class TestPlacementDirectory:
    def test_place_get_and_dual_keying(self):
        directory = PlacementDirectory()
        assert not directory and len(directory) == 0
        entry = directory.place(key=70, cache_key=7, home=1, replicas=(1, 0))
        assert directory and len(directory) == 1
        assert directory.get(70) is entry
        assert directory.by_cache_key[7] is entry
        assert directory.version == 1

    def test_place_validates_replicas(self):
        directory = PlacementDirectory()
        with pytest.raises(ValueError, match="at least one replica"):
            directory.place(1, 1, 0, ())
        with pytest.raises(ValueError, match="duplicate"):
            directory.place(1, 1, 0, (0, 0))

    def test_place_updates_existing_entry_in_place(self):
        directory = PlacementDirectory()
        entry = directory.place(70, 7, 1, (1,))
        again = directory.place(70, 7, 1, (1, 0))
        assert again is entry
        assert entry.replicas == (1, 0)
        assert len(directory) == 1

    def test_drop_reverts_to_home(self):
        directory = PlacementDirectory()
        directory.place(70, 7, 1, (0,))
        assert directory.replicas_for(70, home=1) == (0,)
        directory.drop(70)
        assert directory.replicas_for(70, home=1) == (1,)
        assert not directory.by_cache_key
        assert directory.drop(70) is None

    def test_drop_replica_never_drops_the_last(self):
        directory = PlacementDirectory()
        directory.place(70, 7, 1, (1, 0))
        assert directory.drop_replica(70, 0)
        assert directory.get(70).replicas == (1,)
        # The last copy stays, even if its server is gone: reads must
        # surface the failure, not silently reroute to an empty home.
        assert not directory.drop_replica(70, 1)
        assert directory.get(70).replicas == (1,)
        assert not directory.drop_replica(99, 1)

    def test_exception_census(self):
        directory = PlacementDirectory()
        directory.place(70, 7, 1, (1, 0))   # replicated (home retained)
        directory.place(80, 8, 0, (1,))     # migrated (home left)
        assert directory.replicated_keys() == 1
        assert directory.migrated_keys() == 1


class TestPickReadReplica:
    @staticmethod
    def _server(alive=True, in_use=0, queued=0):
        return SimpleNamespace(
            alive=alive,
            pipeline=SimpleNamespace(in_use=in_use, queue_length=queued),
        )

    def test_least_loaded_wins(self):
        servers = [self._server(in_use=2), self._server(in_use=0),
                   self._server(queued=1)]
        assert pick_read_replica((0, 1, 2), servers) == 1

    def test_ties_break_by_directory_order(self):
        servers = [self._server(), self._server()]
        assert pick_read_replica((1, 0), servers) == 1

    def test_dead_replicas_skipped(self):
        servers = [self._server(alive=False), self._server(in_use=9)]
        assert pick_read_replica((0, 1), servers) == 1

    def test_all_dead_falls_back_to_first(self):
        servers = [self._server(alive=False), self._server(alive=False)]
        assert pick_read_replica((1, 0), servers) == 1


# ---------------------------------------------------------------------------
# Tier routing through the directory
# ---------------------------------------------------------------------------

class TestTierReplicaRouting:
    def _attached(self, service):
        directory = PlacementDirectory()
        heat = HeatTracker(half_life_s=1.0, size=service.assets.num_nodes)
        service.tier.attach_placement(directory, heat)
        return directory

    def test_locate_and_plan_follow_the_directory(self):
        with GraphService.open(ring_graph(), _config()) as service:
            tier = service.tier
            node = 0
            home = tier.partitioner(node, tier.num_servers)
            other = 1 - home
            assert tier.locate(node) is tier.servers[home]
            directory = self._attached(service)
            assert tier.locate(node) is tier.servers[home]  # still empty
            directory.place(node, service.assets.compact[node], home, (other,))
            assert tier.locate(node) is tier.servers[other]
            assert tier.replica_sids(node) == (other,)
            plan = tier.partition_plan([node])
            assert plan == {other: [node]}

    def test_store_record_writes_all_replicas(self):
        config = _config(materialize_storage=True)
        with GraphService.open(ring_graph(), config) as service:
            tier = service.tier
            directory = self._attached(service)
            node = 0
            home = tier.partitioner(node, tier.num_servers)
            other = 1 - home
            directory.place(node, service.assets.compact[node], home,
                            (home, other))
            tier.store_record(record_for_node(service.assets.graph, node))
            for sid in (home, other):
                assert node in tier.servers[sid].store

    def test_read_fails_over_to_live_replica(self):
        config = _config(materialize_storage=True)
        with GraphService.open(ring_graph(), config) as service:
            tier = service.tier
            directory = self._attached(service)
            node = 0
            home = tier.partitioner(node, tier.num_servers)
            other = 1 - home
            directory.place(node, service.assets.compact[node], home,
                            (home, other))
            tier.store_record(record_for_node(service.assets.graph, node))
            tier.servers[home].fail()
            proc = service.env.process(tier.fetch_process([node]))
            records = service.env.run(until=proc)
            assert records[node].node_id == node
            tier.servers[home].recover()


# ---------------------------------------------------------------------------
# Write-all-or-invalidate: replica coherence under failure injection
# ---------------------------------------------------------------------------

class TestReplicaCoherenceUnderFailure:
    def _replicate(self, service, node):
        """Place ``node`` on both servers and materialise both copies."""
        tier = service.tier
        directory = PlacementDirectory()
        heat = HeatTracker(half_life_s=1.0, size=service.assets.num_nodes)
        tier.attach_placement(directory, heat)
        home = tier.partitioner(node, tier.num_servers)
        directory.place(node, service.assets.compact[node], home,
                        (home, 1 - home))
        tier.store_record(record_for_node(service.assets.graph, node))
        return directory, home

    def test_write_all_updates_every_replica(self):
        config = _config(materialize_storage=True)
        with GraphService.open(ring_graph(), config) as service:
            directory, home = self._replicate(service, 0)
            service.apply_updates([GraphUpdate.add_edge(0, 6)])
            tier = service.tier
            payloads = {
                sid: tier.servers[sid].store.get(0) for sid in (0, 1)
            }
            assert payloads[0] == payloads[1]
            # Both copies carry the new edge.
            from repro.storage.records import AdjacencyRecord
            assert 6 in AdjacencyRecord.decode(payloads[home]).out_neighbors()

    def test_mid_write_failure_survivor_covers_and_replica_dropped(self):
        # The PR 5 mid-write regression, extended to replica sets: one
        # server dies mid write-all. The dirty key has a live copy, so
        # the batch *succeeds*; the dead replica leaves the directory at
        # the failure-known instant; caches and staleness behave as for
        # any applied update.
        config = _config(materialize_storage=True)
        with GraphService.open(ring_graph(), config) as service:
            tier = service.tier
            directory, home = self._replicate(service, 0)
            survivor = 1 - home
            # A second dirty node owned by the survivor keeps every key
            # coverable with the home server down.
            other = next(
                n for n in range(1, 12)
                if tier.partitioner(n, tier.num_servers) == survivor
            )
            with service.session() as session:
                session.submit(NeighborAggregationQuery(node=0, hops=1))
                session.drain()
                tier.servers[home].fail()
                session.apply_updates([GraphUpdate.add_edge(0, other)])
                assert service.updates.updates_applied == 1
                assert {0, other} <= service.updates.stale
                assert sum(
                    p.cache.stats.invalidations for p in service.processors
                ) >= 1
                # The failed copy is gone; reads now route to the survivor.
                assert directory.get(0).replicas == (survivor,)
                assert tier.locate(0) is tier.servers[survivor]
                tier.servers[home].recover()
                session.submit(NeighborAggregationQuery(node=other, hops=1))
                session.drain()
                assert session.records[-1].stats.result is not None

    def test_all_replicas_down_still_raises(self):
        # Losing every copy of a dirty key is still a failed write: the
        # legacy StorageServerDown surfaces and the replica set is kept
        # (dead), so later reads surface the loss too.
        config = _config(materialize_storage=True)
        with GraphService.open(ring_graph(), config) as service:
            directory, home = self._replicate(service, 0)
            for server in service.tier.servers:
                server.fail()
            with pytest.raises(StorageServerDown):
                service.apply_updates([GraphUpdate.add_edge(0, 6)])
            assert directory.get(0).replicas == (home, 1 - home)
            assert service.updates.stale >= {0, 6}


# ---------------------------------------------------------------------------
# The manager: plan + timed execution
# ---------------------------------------------------------------------------

class TestPlacementManager:
    def _service(self, **placement_kw):
        placement = PlacementConfig(**{
            "interval_s": 100.0,  # never fires on its own in these tests
            "half_life_s": 10.0,
            **placement_kw,
        })
        return GraphService.open(
            ring_graph(), _config(materialize_storage=True,
                                  placement=placement),
        )

    def test_replication_plans_execute_and_land_copies(self):
        with self._service(heat_threshold=2.0, replicate_threshold=2.0,
                           replicas=2) as service:
            manager = service.placement
            tier = service.tier
            node, idx = 0, service.assets.compact[0]
            home = tier.partitioner(node, tier.num_servers)
            manager.heat.touch(np.array([idx]), service.env.now, weight=5.0)
            moves = manager.plan()
            assert [m.kind for m in moves] == ["replicate"]
            proc = service.env.process(manager._execute(moves))
            before = service.env.now
            service.env.run(until=proc)
            assert service.env.now > before  # copies took simulated time
            assert manager.replications == 1
            assert manager.directory.get(node).replicas == (home, 1 - home)
            assert node in tier.servers[1 - home].store
            assert manager.migration_bytes > 0
            assert tier.servers[1 - home].records_written == 1

    def test_migration_moves_record_and_deletes_old_copy(self):
        with self._service(heat_threshold=2.0, replicate_threshold=1e9,
                           migrate_margin=0.25) as service:
            manager = service.placement
            tier = service.tier
            node, idx = 0, service.assets.compact[0]
            home = tier.partitioner(node, tier.num_servers)
            target = 1 - home
            manager.heat.touch(np.array([idx]), service.env.now, weight=5.0)
            # Skew the load proxy: the holder served everything lately.
            tier.servers[home].requests_served += 100
            moves = manager.plan()
            assert [m.kind for m in moves] == ["migrate"]
            proc = service.env.process(manager._execute(moves))
            service.env.run(until=proc)
            assert manager.migrations == 1
            assert manager.directory.get(node).replicas == (target,)
            assert manager.directory.migrated_keys() == 1
            assert node in tier.servers[target].store
            assert node not in tier.servers[home].store
            assert tier.locate(node) is tier.servers[target]

    def test_cooled_records_are_released(self):
        # interval_s large enough that the manager's own loop never fires
        # inside the 1000 s idle window — this test drives plan() by hand.
        with self._service(interval_s=1e9, heat_threshold=2.0,
                           replicate_threshold=2.0, replicas=2,
                           release_fraction=0.5) as service:
            manager = service.placement
            node, idx = 0, service.assets.compact[0]
            manager.heat.touch(np.array([idx]), service.env.now, weight=5.0)
            proc = service.env.process(manager._execute(manager.plan()))
            service.env.run(until=proc)
            assert manager.directory.get(node) is not None
            # Long idle: heat decays below the release floor...
            timeout = service.env.timeout(1000.0)
            service.env.run(until=timeout)
            moves = manager.plan()
            assert [m.kind for m in moves] == ["release"]
            proc = service.env.process(manager._execute(moves))
            service.env.run(until=proc)
            # ...and the record reverts to hash-home-only.
            assert manager.directory.get(node) is None
            assert manager.releases == 1
            home = service.tier.partitioner(node, service.tier.num_servers)
            assert node in service.tier.servers[home].store
            assert node not in service.tier.servers[1 - home].store

    def test_round_byte_budget_bounds_a_round(self):
        with self._service(heat_threshold=1.0, replicate_threshold=1.0,
                           replicas=2, top_k=16,
                           round_byte_budget=1) as service:
            manager = service.placement
            idxs = np.array([service.assets.compact[n] for n in range(6)])
            manager.heat.touch(idxs, service.env.now, weight=5.0)
            assert manager.plan() == []  # nothing affordable this round

    def test_manager_runs_inside_a_serving_session(self):
        # End to end: a skewed session drives heat through the gather
        # path, the periodic loop replicates, and the report carries the
        # subsystem's stats.
        placement = PlacementConfig(
            interval_s=5e-5, half_life_s=5e-4, heat_threshold=2.0,
            replicate_threshold=2.0, replicas=2, release_fraction=0.0,
        )
        config = _config(cache_capacity_bytes=1 << 10, placement=placement)
        with GraphService.open(ring_graph(24), config) as service:
            with service.session() as session:
                for _ in range(60):
                    session.submit(NeighborAggregationQuery(node=0, hops=2))
                session.drain()
                report = session.report()
            manager = service.placement
            assert manager.rounds > 0
            assert manager.heat.touches > 0
            assert manager.replications > 0
            assert report.placement["replications"] == manager.replications
            assert report.migration_bytes() == manager.migration_bytes > 0
            per_server = report.per_server_stats()
            assert len(per_server) == 2
            assert sum(s["bytes_written"] for s in per_server) >= (
                report.migration_bytes()
            )
            summary = report.summary()
            assert summary["migration_bytes"] == report.migration_bytes()
            assert "storage_request_imbalance" in summary
            assert any(s["top_heat"] for s in per_server)


# ---------------------------------------------------------------------------
# Empty-directory parity: the subsystem is provably zero-cost when unused
# ---------------------------------------------------------------------------

class TestEmptyDirectoryParity:
    @staticmethod
    def _run(graph, placement):
        config = _config(placement=placement)
        with query_ids_from(QueryIdAllocator(start=9_000_000)):
            queries = shifting_hotspot_workload(
                graph, num_phases=2, queries_per_phase=40, radius=1,
                hops=2, seed=3,
            )
        with GraphService.open(graph, config) as service:
            with service.session() as session:
                for query in queries:
                    session.submit(query)
                session.drain()
                return session.report()

    def test_inert_manager_is_bit_identical_to_disabled(self):
        # A manager whose thresholds never fire leaves the directory
        # empty; every overlay guard short-circuits, heat bookkeeping
        # spends zero simulated time, and the full per-query timing
        # stream is *exactly* the placement=None stream.
        disabled = self._run(ring_graph(32), None)
        inert = self._run(ring_graph(32), INERT)
        def key(r):
            return (r.query_id, r.processor, r.decision_time, r.enqueued_at,
                    r.started_at, r.finished_at, r.stats.cache_hits,
                    r.stats.cache_misses, r.stats.bytes_fetched,
                    r.stats.storage_requests, r.stats.result)

        assert [key(r) for r in disabled.records] == [
            key(r) for r in inert.records
        ]
        assert inert.placement is not None
        assert inert.placement["active_placements"] == 0
        assert inert.placement["migration_bytes"] == 0
        assert inert.placement["rounds"] > 0
        assert inert.placement["heat_touches"] > 0
        assert disabled.placement is None
