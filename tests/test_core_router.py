"""Router mechanics: ack-driven dispatch, queues, stealing, fault drain."""

import pytest

from repro import ClusterConfig, GRoutingCluster, GraphAssets
from repro.core import NeighborAggregationQuery
from repro.graph import ring_of_cliques


@pytest.fixture(scope="module")
def graph():
    return ring_of_cliques(8, 5)


@pytest.fixture(scope="module")
def assets(graph):
    return GraphAssets(graph)


def _cluster(graph, assets, routing="hash", processors=3, steal=True,
             **kwargs):
    config = ClusterConfig(
        num_processors=processors,
        num_storage_servers=2,
        routing=routing,
        cache_capacity_bytes=1 << 20,
        steal=steal,
        **kwargs,
    )
    return GRoutingCluster(graph, config, assets=assets)


def _queries(nodes, hops=2):
    return [NeighborAggregationQuery(node=n, hops=hops) for n in nodes]


class TestDispatch:
    def test_all_queries_complete_exactly_once(self, graph, assets):
        cluster = _cluster(graph, assets)
        queries = _queries(range(30))
        report = cluster.run(queries)
        assert len(report.records) == 30
        assert len({r.query_id for r in report.records}) == 30

    def test_one_outstanding_query_per_processor(self, graph, assets):
        # With 1 processor, executions must be strictly sequential.
        cluster = _cluster(graph, assets, processors=1)
        report = cluster.run(_queries(range(10)))
        spans = sorted((r.started_at, r.finished_at) for r in report.records)
        for (_s1, f1), (s2, _f2) in zip(spans, spans[1:], strict=False):
            assert s2 >= f1

    def test_empty_workload(self, graph, assets):
        cluster = _cluster(graph, assets)
        report = cluster.run([])
        assert report.records == []
        assert report.makespan == 0.0

    def test_cluster_runs_only_once(self, graph, assets):
        cluster = _cluster(graph, assets)
        cluster.run(_queries([0]))
        with pytest.raises(RuntimeError):
            cluster.run(_queries([1]))

    def test_hash_routing_respects_intended_processor(self, graph, assets):
        cluster = _cluster(graph, assets, routing="hash", processors=3,
                           steal=False)
        report = cluster.run(_queries(range(12)))
        for record in report.records:
            assert record.processor == record.node % 3
            assert record.intended_processor == record.node % 3
            assert not record.stolen


class TestStealing:
    def test_skewed_load_triggers_stealing(self, graph, assets):
        # All queries hash to processor 0 (nodes all ≡ 0 mod 3): with
        # stealing on, other processors must take some of them.
        cluster = _cluster(graph, assets, routing="hash", processors=3)
        nodes = [n for n in range(0, 40) if n % 3 == 0 and graph.has_node(n)]
        report = cluster.run(_queries(nodes))
        used = {r.processor for r in report.records}
        assert len(used) > 1
        assert report.stolen_count() > 0

    def test_no_steal_keeps_skew(self, graph, assets):
        cluster = _cluster(graph, assets, routing="hash", processors=3,
                           steal=False)
        nodes = [n for n in range(0, 40) if n % 3 == 0 and graph.has_node(n)]
        report = cluster.run(_queries(nodes))
        assert {r.processor for r in report.records} == {0}

    def test_stealing_improves_makespan(self, graph, assets):
        nodes = [n for n in range(0, 40) if n % 3 == 0 and graph.has_node(n)]
        with_steal = _cluster(graph, assets, processors=3).run(_queries(nodes))
        without = _cluster(graph, assets, processors=3, steal=False).run(
            _queries(nodes)
        )
        assert with_steal.makespan < without.makespan

    def test_next_ready_never_marks_stolen(self, graph, assets):
        cluster = _cluster(graph, assets, routing="next_ready", processors=3)
        report = cluster.run(_queries(range(20)))
        assert report.stolen_count() == 0


class TestLoadTracking:
    def test_loads_reflect_queue_and_outstanding(self, graph, assets):
        cluster = _cluster(graph, assets, routing="hash", processors=2,
                           steal=False)
        router = cluster.router
        queries = _queries([0, 2, 4, 6])  # all hash to processor 0
        router.submit(queries)
        # One query dispatched (outstanding), three queued.
        assert router.loads()[0] == 4
        assert router.loads()[1] == 0

    def test_invalid_strategy_target_rejected(self, graph, assets):
        cluster = _cluster(graph, assets, routing="hash", processors=2)
        cluster.strategy.num_processors = 99  # corrupt deliberately
        with pytest.raises(ValueError):
            cluster.router.submit(_queries([97]))


class TestEdgeCases:
    def test_single_processor_with_steal_enabled(self, graph, assets):
        # Stealing with no victims: max() over an empty candidate set must
        # not blow up, and nothing can ever be marked stolen.
        cluster = _cluster(graph, assets, processors=1, steal=True)
        report = cluster.run(_queries(range(15)))
        assert len(report.records) == 15
        assert report.stolen_count() == 0
        assert {r.processor for r in report.records} == {0}

    def test_steal_disabled_empty_pool_idles_processor(self, graph, assets):
        # All queries target processor 0; with stealing off and an empty
        # pool, processor 1 must execute nothing at all.
        cluster = _cluster(graph, assets, routing="hash", processors=2,
                           steal=False)
        nodes = [n for n in range(0, 30, 2) if graph.has_node(n)]  # all even
        report = cluster.run(_queries(nodes))
        assert {r.processor for r in report.records} == {0}
        assert cluster.processors[1].queries_executed == 0

    def test_steal_from_pool_when_own_queue_empty(self, graph, assets):
        # next_ready keeps everything in the shared pool: every processor
        # pulls from it without any record being marked stolen.
        cluster = _cluster(graph, assets, routing="next_ready", processors=3)
        report = cluster.run(_queries(range(12)))
        assert report.stolen_count() == 0
        assert len({r.processor for r in report.records}) > 1

    def test_backlog_tracks_incomplete_queries(self, graph, assets):
        cluster = _cluster(graph, assets, routing="hash", processors=2)
        router = cluster.router
        assert router.backlog() == 0
        router.submit(_queries(range(6)))
        assert router.backlog() == 6
        cluster.env.run(until=router.done)
        assert router.backlog() == 0

    def test_when_backlog_at_most_already_satisfied(self, graph, assets):
        cluster = _cluster(graph, assets, routing="hash", processors=2)
        event = cluster.router.when_backlog_at_most(5)
        assert event.triggered

    def test_when_backlog_at_most_fires_on_drain(self, graph, assets):
        cluster = _cluster(graph, assets, routing="hash", processors=2)
        router = cluster.router
        router.submit(_queries(range(8)))
        event = router.when_backlog_at_most(3)
        assert not event.triggered
        cluster.env.run(until=event)
        assert router.backlog() <= 3
        cluster.env.run(until=router.done)

    def test_repeated_submission_rearms_done(self, graph, assets):
        # Wave-based submission: done fires per drained wave and re-arms.
        cluster = _cluster(graph, assets, routing="hash", processors=2)
        router = cluster.router
        router.submit(_queries(range(4)))
        cluster.env.run(until=router.done)
        assert len(router.records) == 4
        router.submit(_queries(range(10, 14)))
        cluster.env.run(until=router.done)
        assert len(router.records) == 8

    def test_submit_batch_waves_complete_all_queries(self, graph, assets):
        cluster = _cluster(graph, assets, routing="hash", processors=3,
                           submit_batch=4)
        report = cluster.run(_queries(range(19)))
        assert len(report.records) == 19
        assert len({r.query_id for r in report.records}) == 19

    def test_invalid_submit_batch_rejected(self, graph, assets):
        cluster = _cluster(graph, assets, routing="hash", processors=2,
                           submit_batch=0)
        with pytest.raises(ValueError):
            cluster.run(_queries(range(3)))


class TestLifecycleGuards:
    def test_submit_after_shutdown_raises(self, graph, assets):
        cluster = _cluster(graph, assets)
        cluster.router.shutdown()
        assert cluster.router.closed
        with pytest.raises(RuntimeError, match="shut down"):
            cluster.router.submit(_queries([0]))

    def test_shutdown_is_idempotent(self, graph, assets):
        cluster = _cluster(graph, assets)
        cluster.router.shutdown()
        cluster.router.shutdown()
        assert cluster.router.closed

    def test_submit_with_all_processors_dead_raises(self, graph, assets):
        # Mid-reconfig / post-failure: an empty effective processor set
        # must be a clear error, not queries stranded in queues forever.
        cluster = _cluster(graph, assets, processors=2)
        cluster.router.remove_processor(0)
        cluster.router.remove_processor(1)
        with pytest.raises(RuntimeError, match="no alive processors"):
            cluster.router.submit(_queries([0]))

    def test_submit_to_dead_processor_redistributes(self, graph, assets):
        # With steal off, a query routed to a removed processor's queue
        # would strand forever; submit must pool it instead (the same
        # redistribution remove_processor applies to queued work).
        cluster = _cluster(graph, assets, routing="hash", processors=2,
                           steal=False)
        router = cluster.router
        router.remove_processor(0)
        nodes = [n for n in range(0, 12, 2) if graph.has_node(n)]  # hash -> 0
        router.submit(_queries(nodes))
        cluster.env.run(until=router.done)
        assert len(router.records) == len(nodes)
        assert all(r.processor == 1 for r in router.records)
        assert all(r.intended_processor == 0 for r in router.records)

    def test_set_strategy_after_shutdown_raises(self, graph, assets):
        cluster = _cluster(graph, assets)
        cluster.router.shutdown()
        with pytest.raises(RuntimeError):
            cluster.router.set_strategy(cluster.strategy)

    def test_set_strategy_swaps_decisions(self, graph, assets):
        from repro.core import NextReadyRouting

        cluster = _cluster(graph, assets, routing="hash", processors=2)
        router = cluster.router
        router.submit(_queries([0, 2]))
        router.set_strategy(NextReadyRouting())
        router.submit(_queries([4, 6]))
        cluster.env.run(until=router.done)
        labels = {r.query_id: r.routed_via for r in router.records}
        assert sorted(labels.values()) == [
            "hash", "hash", "next_ready", "next_ready",
        ]


class TestRoutingFeedback:
    def test_feedback_delivered_per_ack(self, graph, assets):
        cluster = _cluster(graph, assets, routing="hash", processors=2)
        received = []
        cluster.strategy.on_feedback = received.append
        cluster.run(_queries(range(9)))
        assert len(received) == 9
        for fb in received:
            assert fb.response_time > 0
            # Sojourn (arrival to completion) covers at least the
            # processing span; response additionally counts decision time.
            assert fb.sojourn_time > 0
            assert len(fb.loads) == 2
            assert 0.0 <= fb.processor_hit_rate <= 1.0

    def test_records_carry_routing_labels(self, graph, assets):
        cluster = _cluster(graph, assets, routing="hash", processors=2)
        report = cluster.run(_queries(range(6)))
        assert all(r.routed_via == "hash" for r in report.records)
        assert all(r.query_class == "traversal" for r in report.records)
        assert report.per_arm_counts() == {"hash": 6}


class TestFaultDrain:
    def test_removed_processor_work_is_redistributed(self, graph, assets):
        cluster = _cluster(graph, assets, routing="hash", processors=3,
                           steal=False)
        router = cluster.router
        nodes = [n for n in range(0, 40) if n % 3 == 0 and graph.has_node(n)]
        router.submit(_queries(nodes))
        moved = router.remove_processor(0)
        assert moved > 0
        cluster.env.run(until=router.done)
        report_processors = {
            record.processor for record in router.records[1:]
        }
        # Processor 0 finishes at most its in-flight query; the rest of the
        # work lands on the survivors.
        assert report_processors <= {0, 1, 2}
        survivors = [r for r in router.records if r.processor != 0]
        assert len(survivors) >= len(nodes) - 1

    def test_all_queries_still_complete_after_removal(self, graph, assets):
        cluster = _cluster(graph, assets, routing="embed", processors=3,
                           embed_method="lmds", num_landmarks=8,
                           min_separation=2)
        router = cluster.router
        queries = _queries(range(20))
        router.submit(queries)
        router.remove_processor(1)
        cluster.env.run(until=router.done)
        assert len(router.records) == 20
