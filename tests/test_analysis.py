"""Static analyzer: per-rule fixtures (hit, near-miss, waiver), waiver
machinery, report contract, and the repo-wide strict gate."""

import json
import textwrap
from pathlib import Path

from repro.analysis import (
    AnalysisReport,
    analyze_paths,
    analyze_source,
    all_rules,
    get_rule,
    parse_waivers,
    render_json,
    render_text,
)
from repro.analysis.validate import main as validate_main
from repro.analysis.validate import validate_report

REPO_ROOT = Path(__file__).resolve().parents[1]


def run(source, path):
    report = AnalysisReport()
    diags = analyze_source(textwrap.dedent(source), path, report=report)
    return diags, report


def unwaived(source, path):
    diags, _ = run(source, path)
    return sorted(d.code for d in diags if not d.waived)


class TestRegistry:
    def test_rules_registered_and_sorted(self):
        codes = [r.code for r in all_rules()]
        assert codes == sorted(codes)
        assert {"D101", "D102", "D103", "D104", "D105",
                "K201", "K202", "K203", "S301", "S302"} <= set(codes)

    def test_get_rule(self):
        assert get_rule("D101").name == "wall-clock-read"


class TestD101WallClock:
    def test_wall_clock_reads_flagged(self):
        source = """
            import time
            from datetime import datetime
            def stamp():
                return time.time(), time.perf_counter(), datetime.now()
        """
        assert unwaived(source, "repro/core/x.py") == ["D101"] * 3

    def test_sleep_and_bench_are_exempt(self):
        assert unwaived("import time\ntime.sleep(1)\n",
                        "repro/core/x.py") == []
        assert unwaived("import time\nt = time.perf_counter()\n",
                        "repro/bench/x.py") == []

    def test_waiver_honored(self):
        source = """
            import time
            t = time.time()  # repro: allow D101 — calibration harness
        """
        diags, report = run(source, "repro/core/x.py")
        assert [d.code for d in diags] == ["D101"]
        assert diags[0].waived
        assert report.unused_waivers == []


class TestD102GlobalRng:
    def test_global_rng_calls_flagged(self):
        source = """
            import random
            import numpy as np
            def draw():
                return random.random(), np.random.rand()
        """
        assert unwaived(source, "repro/core/x.py") == ["D102", "D102"]

    def test_seeded_generators_pass(self):
        source = """
            import random
            import numpy as np
            def draw(rng):
                r = random.Random(7)
                g = np.random.default_rng(7)
                return r.random(), g.random(), rng.random()
        """
        assert unwaived(source, "repro/core/x.py") == []

    def test_waiver_honored(self):
        source = """
            import random
            random.seed(0)  # repro: allow D102 — demo script, not replayed
        """
        diags, _ = run(source, "repro/core/x.py")
        assert diags[0].code == "D102" and diags[0].waived


class TestD103SetIteration:
    def test_set_iteration_flagged(self):
        source = """
            def f(out):
                for node in {3, 1, 2}:
                    out.append(node)
                xs = [n for n in set(out)]
                return list({1, 2})
        """
        assert unwaived(source, "repro/core/x.py") == ["D103"] * 3

    def test_set_typed_local_tracked(self):
        source = """
            def f():
                pending = set()
                return [x for x in pending]
        """
        assert unwaived(source, "repro/storage/x.py") == ["D103"]

    def test_sorted_wrapping_and_sinks_pass(self):
        source = """
            def f(s):
                for n in sorted({3, 1, 2}):
                    pass
                total = sum(x for x in set(s))
                sub = {x for x in set(s)}
                return total, sub
        """
        assert unwaived(source, "repro/core/x.py") == []

    def test_only_order_sensitive_packages_checked(self):
        source = "for x in {1, 2}:\n    pass\n"
        assert unwaived(source, "repro/bench/x.py") == []
        assert unwaived(source, "repro/workloads/x.py") == ["D103"]

    def test_waiver_honored(self):
        source = """
            # repro: allow D103 — summed, order cannot reach scheduling
            acc = [x * x for x in {1, 2}]
        """
        diags, _ = run(source, "repro/core/x.py")
        assert diags[0].code == "D103" and diags[0].waived


class TestD104IdAsKey:
    def test_id_call_flagged(self):
        assert unwaived("key = id(object())\n", "repro/core/x.py") == ["D104"]

    def test_method_and_attribute_pass(self):
        source = "def f(node, row):\n    return node.id, row.id()\n"
        assert unwaived(source, "repro/core/x.py") == []

    def test_waiver_honored(self):
        source = "k = id(x)  # repro: allow D104 — identity map, lookup only\n"
        diags, _ = run(source, "repro/core/x.py")
        assert diags[0].code == "D104" and diags[0].waived


class TestD105Popitem:
    def test_bare_popitem_flagged(self):
        assert unwaived("pair = d.popitem()\n", "repro/core/x.py") == ["D105"]

    def test_explicit_last_passes(self):
        assert unwaived("pair = d.popitem(last=False)\n",
                        "repro/core/x.py") == []


class TestK201Slots:
    def test_slotless_kernel_class_flagged(self):
        assert unwaived("class Foo:\n    pass\n",
                        "repro/sim/x.py") == ["K201"]

    def test_slotless_event_subclass_flagged_anywhere(self):
        source = "class Fetch(Event):\n    pass\n"
        assert unwaived(source, "repro/core/x.py") == ["K201"]

    def test_slotted_and_exception_classes_pass(self):
        source = """
            class Slotted:
                __slots__ = ("a",)
            class KernelError(Exception):
                pass
        """
        assert unwaived(source, "repro/sim/x.py") == []

    def test_slotted_event_subclass_passes(self):
        # The fused-fetch pattern (PR 9): an Event subclass that *is* its
        # own completion event, slotted like the rest of the hierarchy.
        source = """
            class Fetch(Event):
                __slots__ = ("server", "num_keys", "nbytes")
                def __init__(self, env, server):
                    super().__init__(env)
                    self.server = server
        """
        assert unwaived(source, "repro/core/x.py") == []

    def test_module_waiver_covers_every_class(self):
        source = """
            # repro: allow-module K201 — frozen baseline copy
            class A:
                pass
            class B:
                pass
        """
        diags, report = run(source, "repro/sim/x.py")
        assert [d.code for d in diags] == ["K201", "K201"]
        assert all(d.waived for d in diags)
        assert report.unused_waivers == []


class TestK202TimeoutRetention:
    def test_retained_timeout_flagged(self):
        source = """
            def worker(env):
                t = env.timeout(1.0)
                yield t
                yield env.timeout(1.0)
                return t.value
        """
        assert unwaived(source, "repro/core/x.py") == ["K202"]

    def test_structured_target_flagged(self):
        source = """
            def worker(self, env):
                self.t = env.timeout(1.0)
                yield self.t
        """
        assert unwaived(source, "repro/core/x.py") == ["K202"]

    def test_single_immediate_yield_passes(self):
        source = """
            def worker(env):
                t = env.timeout(1.0)
                yield t
        """
        assert unwaived(source, "repro/core/x.py") == []

    def test_valued_timeout_and_non_generator_pass(self):
        source = """
            def worker(env):
                t = env.timeout(1.0, value="k")
                yield t
                yield env.timeout(1.0)
                return t.value

            def callback_style(self, env):
                self.pending = env.timeout(1.0)
        """
        assert unwaived(source, "repro/core/x.py") == []

    def test_callback_chain_timeout_passes(self):
        # The fused fetch chain drives timeouts from plain methods via
        # ``callbacks.append`` — no generator ever retains one past its
        # recycle point, so K202's retained-timeout analysis must not
        # fire on the non-generator callback stages.
        source = """
            def _on_grant(self, _event):
                service = self.env.timeout(0.5)
                service.callbacks.append(self._on_service_end)
        """
        assert unwaived(source, "repro/core/x.py") == []


class TestK203ProcessYields:
    def test_non_event_yields_flagged(self):
        source = """
            def drain_process(env):
                yield
                yield 42
                yield (1, 2)
        """
        assert unwaived(source, "repro/sim/x.py") == ["K203"] * 3

    def test_eventish_yields_and_helpers_pass(self):
        source = """
            def drain_process(env, pending):
                yield env.timeout(1.0)
                yield pending[0]
                yield from subtask(env)

            def helper(env):
                yield 42
        """
        assert unwaived(source, "repro/sim/x.py") == []

    def test_only_kernel_packages_checked(self):
        source = "def gen_process(env):\n    yield 42\n"
        assert unwaived(source, "repro/workloads/x.py") == []
        assert unwaived(source, "repro/storage/x.py") == ["K203"]

    def test_direct_fetch_yield_passes(self):
        # The batched gather yields its single fused fetch directly
        # (the fetch *is* the completion event) instead of wrapping it
        # in an AllOf; a subscripted event is still eventish to K203.
        source = """
            def gather_process(env, fetches):
                if len(fetches) == 1:
                    yield fetches[0]
                else:
                    yield env.all_of(fetches)
        """
        assert unwaived(source, "repro/sim/x.py") == []


class TestS301UntimedMutation:
    def test_non_generator_mutation_flagged(self):
        source = """
            def seed_data(store):
                store.put("k", b"v")
                store.delete("k")
        """
        assert unwaived(source, "repro/storage/x.py") == ["S301", "S301"]

    def test_generator_pipeline_passes(self):
        source = """
            def write_process(env, store):
                yield env.timeout(1.0)
                store.put("k", b"v")
        """
        assert unwaived(source, "repro/storage/x.py") == []

    def test_queue_receivers_and_impl_modules_pass(self):
        source = "def push(inbox, item):\n    inbox.put(item)\n"
        assert unwaived(source, "repro/core/x.py") == []
        mutation = "def compact(self):\n    self.store.put('k', b'')\n"
        assert unwaived(mutation, "repro/storage/kvstore.py") == []

    def test_waiver_honored(self):
        source = """
            def preload(store, rows):
                store.load(rows)  # repro: allow S301 — untimed setup
        """
        diags, _ = run(source, "repro/storage/x.py")
        assert diags[0].code == "S301" and diags[0].waived


class TestS302ArtifactEmission:
    def test_direct_writes_flagged(self):
        source = """
            import json
            def save(rows, path):
                with open(path, "w") as fh:
                    json.dump(rows, fh)
        """
        assert unwaived(source, "repro/bench/x.py") == ["S302", "S302"]

    def test_harness_and_method_calls_pass(self):
        source = """
            import json
            def save(rows, path):
                with open(path, "w") as fh:
                    json.dump(rows, fh)
        """
        assert unwaived(source, "repro/bench/harness.py") == []
        assert unwaived("service = GraphService.open(graph, config)\n",
                        "repro/bench/x.py") == []

    def test_path_write_text_flagged(self):
        assert unwaived("path.write_text('{}')\n",
                        "repro/bench/x.py") == ["S302"]


class TestWaiverMachinery:
    def test_waiver_on_line_above(self):
        source = """
            # repro: allow D104 — identity map, lookup only
            key = id(object())
        """
        diags, _ = run(source, "repro/core/x.py")
        assert diags[0].waived

    def test_separator_variants(self):
        table = parse_waivers(
            "x = 1  # repro: allow D104 -- double dash reason\n"
            "y = 2  # repro: allow D105: colon reason\n")
        assert {w.code for w in table.all_waivers()} == {"D104", "D105"}

    def test_multi_code_waiver(self):
        table = parse_waivers("# repro: allow D104, D105 — shared reason\n")
        assert {w.code for w in table.all_waivers()} == {"D104", "D105"}

    def test_reasonless_waiver_is_malformed(self):
        diags, report = run("key = id(x)  # repro: allow D104\n",
                            "repro/core/x.py")
        assert not diags[0].waived
        assert report.malformed_waivers
        assert not report.ok()

    def test_unknown_code_waiver_is_malformed(self):
        _, report = run("x = 1  # repro: allow Z999 — no such rule\n",
                        "repro/core/x.py")
        assert any("Z999" in str(m) for m in report.malformed_waivers)

    def test_unused_waiver_fails_only_strict(self):
        _, report = run("x = 1  # repro: allow D104 — nothing here\n",
                        "repro/core/x.py")
        assert report.unused_waivers
        assert report.ok(strict=False)
        assert not report.ok(strict=True)

    def test_docstring_examples_are_not_waivers(self):
        source = '''
            def f():
                """Waive like:  # repro: allow D104 — example."""
                return 1
        '''
        _, report = run(source, "repro/core/x.py")
        assert report.unused_waivers == []
        assert report.malformed_waivers == []

    def test_parse_error_recorded(self):
        diags, report = run("def broken(:\n", "repro/core/x.py")
        assert diags == []
        assert report.errors and not report.ok()


class TestReportAndValidator:
    def _report_file(self, tmp_path, source="key = id(object())\n"):
        report = AnalysisReport()
        report.diagnostics.extend(
            analyze_source(source, "repro/core/x.py", report=report))
        report.files_analyzed = 1
        out = tmp_path / "analysis_report.json"
        out.write_text(render_json(report, strict=True))
        return out

    def test_render_text_summary(self):
        report = AnalysisReport()
        report.diagnostics.extend(
            analyze_source("key = id(object())\n", "repro/core/x.py",
                           report=report))
        report.files_analyzed = 1
        text = render_text(report)
        assert "D104" in text and text.endswith("(1 unwaived, 0 waived)")
        assert text.startswith("repro/core/x.py:1:6: D104")

    def test_json_report_conforms(self, tmp_path):
        out = self._report_file(tmp_path)
        assert validate_report(out) == []
        payload = json.loads(out.read_text())
        assert payload["version"] == 1
        assert payload["summary"]["per_rule"]["D104"]["unwaived"] == 1

    def test_validator_rejects_missing_keys(self, tmp_path):
        out = self._report_file(tmp_path)
        payload = json.loads(out.read_text())
        del payload["summary"]
        out.write_text(json.dumps(payload))
        assert any("summary" in p for p in validate_report(out))

    def test_validator_rejects_inconsistent_ok(self, tmp_path):
        out = self._report_file(tmp_path)
        payload = json.loads(out.read_text())
        payload["ok"] = True  # but one unwaived violation remains
        out.write_text(json.dumps(payload))
        assert any("unwaived" in p for p in validate_report(out))

    def test_validator_cli_exit_codes(self, tmp_path, capsys):
        good = self._report_file(tmp_path)
        assert validate_main(["validate", str(good)]) == 0
        bad = tmp_path / "bad.json"
        bad.write_text("not json")
        assert validate_main(["validate", str(bad)]) == 1
        assert validate_main(["validate"]) == 2
        capsys.readouterr()


class TestRepoWideGate:
    def test_repo_passes_strict(self):
        """The acceptance bar: zero unwaived violations in src/repro."""
        report = analyze_paths([REPO_ROOT / "src" / "repro"], root=REPO_ROOT)
        assert report.files_analyzed > 50
        offenders = [d.render() for d in report.unwaived]
        assert offenders == []
        assert report.errors == []
        assert report.malformed_waivers == []
        assert report.unused_waivers == []
        assert report.ok(strict=True)

    def test_every_waiver_in_repo_carries_reason(self):
        report = analyze_paths([REPO_ROOT / "src" / "repro"], root=REPO_ROOT)
        for diag in report.waived:
            assert diag.waiver_reason.strip()
