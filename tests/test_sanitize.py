"""Runtime sanitizer: every trap provoked, plus sanitize-on/off parity."""

import random

import numpy as np
import pytest

from repro import ClusterConfig, GraphService
from repro.analysis.sanitize import (
    UnseededRandomError,
    audit_tie_sensitivity,
    rng_trap,
)
from repro.core import GraphAssets, QueryStats, gather_nodes
from repro.core.processor import QueryProcessor
from repro.costs import DEFAULT_COSTS
from repro.datasets import memetracker_like
from repro.graph import erdos_renyi
from repro.sim import Environment, SimulationError
from repro.storage import StorageTier
from repro.workloads import hotspot_workload


class TestPooledTimeoutRetention:
    def test_value_read_after_next_yield_trips(self):
        env = Environment(sanitize=True)

        def retainer(env):
            t = env.timeout(1.0)
            yield t
            yield env.timeout(1.0)  # t is retired here
            return t.value  # reuse-after-free

        env.process(retainer(env))
        with pytest.raises(SimulationError, match="recycled bare Timeout"):
            env.run()

    def test_re_yield_after_next_yield_trips(self):
        env = Environment(sanitize=True)

        def re_yielder(env):
            t = env.timeout(1.0)
            yield t
            yield env.timeout(1.0)
            yield t  # single-waiter contract violation

        env.process(re_yielder(env))
        with pytest.raises(SimulationError, match="recycled bare Timeout"):
            env.run()

    def test_unsanitized_run_recycles_silently(self):
        # The bug the trap exists for: without sanitize the retained
        # reference aliases a *recycled* timeout and misreads state.
        env = Environment()

        def retainer(env):
            t = env.timeout(1.0)
            yield t
            yield env.timeout(1.0)

        env.process(retainer(env))
        env.run()
        # recycled (into the one-slot spare lane or the free list),
        # not retired
        assert env._spare is not None or len(env._timeout_pool) >= 1

    def test_valued_timeouts_are_exempt(self):
        env = Environment(sanitize=True)
        seen = []

        def keeper(env):
            t = env.timeout(1.0, value="payload")
            yield t
            yield env.timeout(1.0)
            seen.append(t.value)  # explicit value= opts out of pooling

        env.process(keeper(env))
        env.run()
        assert seen == ["payload"]


class TestUnhandledFailureTrap:
    def test_unobserved_process_failure_surfaces(self):
        env = Environment(sanitize=True)

        def failing(env):
            yield env.timeout(1.0)
            raise ValueError("boom")

        env.process(failing(env))
        with pytest.raises(ValueError, match="boom"):
            env.run()

    def test_handled_failure_is_not_trapped(self):
        env = Environment(sanitize=True)

        def failing(env):
            yield env.timeout(1.0)
            raise ValueError("boom")

        def watcher(env):
            try:
                yield env.process(failing(env))
            except ValueError:
                return "caught"

        p = env.process(watcher(env))
        assert env.run(until=p) == "caught"

    def test_unsanitized_failure_stays_silent(self):
        # Documents the default (simpy-like) behavior the trap tightens.
        env = Environment()

        def failing(env):
            yield env.timeout(1.0)
            raise ValueError("boom")

        env.process(failing(env))
        env.run()  # completes; the exception sits on the process event


class TestRngTrap:
    def test_random_call_inside_sanitized_run_raises(self):
        env = Environment(sanitize=True)

        def gambler(env):
            yield env.timeout(1.0)
            random.random()

        env.process(gambler(env))
        with pytest.raises(UnseededRandomError, match="random.random"):
            env.run()
        # The trap uninstalls even though run() raised.
        assert 0.0 <= random.random() <= 1.0

    def test_numpy_global_call_raises(self):
        env = Environment(sanitize=True)

        def gambler(env):
            yield env.timeout(1.0)
            np.random.rand()

        env.process(gambler(env))
        with pytest.raises(UnseededRandomError, match="np.random.rand"):
            env.run()
        assert 0.0 <= float(np.random.rand()) <= 1.0

    def test_seeded_generators_pass(self):
        env = Environment(sanitize=True)
        drawn = []

        def principled(env):
            rng = random.Random(7)
            nrng = np.random.default_rng(7)
            yield env.timeout(1.0)
            drawn.append(rng.random())
            drawn.append(float(nrng.random()))

        env.process(principled(env))
        env.run()
        assert len(drawn) == 2

    def test_trap_is_refcounted(self):
        with rng_trap():
            with rng_trap():
                with pytest.raises(UnseededRandomError):
                    random.random()
            # still installed: outer context holds it
            with pytest.raises(UnseededRandomError):
                random.shuffle([1, 2])
        assert 0.0 <= random.random() <= 1.0

    def test_unsanitized_run_leaves_rng_alone(self):
        env = Environment()
        drawn = []

        def gambler(env):
            yield env.timeout(1.0)
            drawn.append(random.random())

        env.process(gambler(env))
        env.run()
        assert len(drawn) == 1


class TestTieAudit:
    def test_sensitive_program_is_flagged(self):
        def build(env):
            out = []

            def proc(tag):
                out.append(tag)  # runs at Initialize dispatch: tie-ordered
                yield env.timeout(1.0)

            env.process(proc("a"))
            env.process(proc("b"))
            return lambda: list(out)

        result = audit_tie_sensitivity(build)
        assert result.sensitive
        assert result.fifo_result == ["a", "b"]
        assert result.lifo_result == ["b", "a"]
        assert "SENSITIVE" in result.describe()

    def test_insensitive_program_passes(self):
        def build(env):
            out = []

            def proc(tag):
                out.append(tag)
                yield env.timeout(1.0)

            env.process(proc("a"))
            env.process(proc("b"))
            return lambda: sorted(out)  # order-insensitive extraction

        result = audit_tie_sensitivity(build)
        assert not result.sensitive
        assert "insensitive" in result.describe()

    def test_one_sided_crash_counts_as_sensitive(self):
        def build(env):
            def chooser(env):
                yield env.timeout(1.0)

            def crasher(_env):
                raise SimulationError("lifo goes first and dies")
                yield  # pragma: no cover - unreachable

            # LIFO initializes crasher's cohort peer first.
            env.process(chooser(env))
            if env._seq_step < 0:
                env.process(crasher(env))
            return lambda: "finished"

        result = audit_tie_sensitivity(build)
        assert result.sensitive
        assert "lifo" in result.errors

    def test_build_must_return_extractor(self):
        with pytest.raises(TypeError, match="extractor"):
            audit_tie_sensitivity(lambda env: None)

    def test_invalid_tie_break_rejected(self):
        with pytest.raises(SimulationError, match="tie_break"):
            Environment(tie_break="random")


class TestTieAuditGather:
    """Tie audit over the batched gather transaction (PR 9 hot path).

    ``gather_nodes`` now issues one fused ``_ServerFetch`` callback chain
    per touched server. The audit must (a) certify that a single batched
    gather's result-visible state is order-insensitive, (b) still *see*
    genuine sensitivity through the callback-chain path — same-instant
    contention on a server pipeline is attributed differently under FIFO
    vs LIFO — and (c) certify overlapping-but-staggered gathers, where
    shared-cache interleaving is timing-determined rather than
    tie-determined.
    """

    @pytest.fixture(scope="class")
    def graph(self):
        return erdos_renyi(120, 480, seed=11)

    @staticmethod
    def _processor(env, graph):
        assets = GraphAssets(graph)
        tier = StorageTier(env, num_servers=3)
        tier.load_graph(graph)
        # Capacity far above the working set: evictions would make
        # shared-cache hit counts legitimately order-dependent.
        return QueryProcessor(env, 0, tier, assets, DEFAULT_COSTS,
                              cache_capacity_bytes=4 << 20)

    @staticmethod
    def _stats_tuple(stats):
        return (stats.cache_hits, stats.cache_misses, stats.nodes_touched,
                stats.bytes_fetched, stats.storage_requests)

    def test_single_batched_gather_insensitive(self, graph):
        def build(env):
            processor = self._processor(env, graph)
            stats = QueryStats()
            done = []

            def wave():
                # Multi-server frontier, then a refetch mixing hits with
                # a single-owner miss (the direct-yield fetch path).
                yield from gather_nodes(
                    processor, np.arange(0, 48, dtype=np.int64), stats)
                yield from gather_nodes(
                    processor, np.arange(40, 49, dtype=np.int64), stats)
                done.append(env.now)

            env.process(wave())
            return lambda: (done, self._stats_tuple(stats))

        result = audit_tie_sensitivity(build)
        assert not result.sensitive, result.describe()

    def test_same_instant_contention_is_flagged(self, graph):
        # Two identical frontiers issued at the same instant tie on every
        # server pipeline; which query's fetch is granted first — and so
        # each query's completion time — is pure tie-break. The audit
        # must flag that through the fused callback chain.
        def build(env):
            processor = self._processor(env, graph)
            stats = [QueryStats(), QueryStats()]
            done = []

            def wave(idx):
                yield from gather_nodes(
                    processor, np.arange(0, 48, dtype=np.int64), stats[idx])
                done.append((idx, env.now))

            env.process(wave(0))
            env.process(wave(1))
            return lambda: sorted(done)

        result = audit_tie_sensitivity(build)
        assert result.sensitive

    def test_staggered_overlap_insensitive(self, graph):
        # Overlapping frontiers through the shared cache, but arrivals
        # staggered so no fetch events tie: the second wave's hit/miss
        # split depends on simulated admission *times*, not on tie order.
        def build(env):
            processor = self._processor(env, graph)
            stats = [QueryStats(), QueryStats()]
            done = []

            def wave(idx, start, lo, hi):
                if start:
                    yield env.timeout(start)
                yield from gather_nodes(
                    processor,
                    np.arange(lo, hi, dtype=np.int64), stats[idx])
                done.append((idx, env.now))

            env.process(wave(0, 0.0, 0, 48))
            env.process(wave(1, 0.0917, 24, 72))
            return lambda: (sorted(done),
                            [self._stats_tuple(s) for s in stats])

        result = audit_tie_sensitivity(build)
        assert not result.sensitive, result.describe()


class TestTieTallies:
    def test_cohorts_counted_under_sanitize(self):
        env = Environment(sanitize=True)

        def ticker(env):
            yield env.timeout(1.0)

        env.process(ticker(env))
        env.process(ticker(env))
        env.run()
        report = env.sanitize_report()
        assert report["sanitize"] is True
        assert report["reports"] == []
        # Two multi-event cohorts: the t=0 Initialize pair, and at t=1 the
        # two timeouts plus both process-completion events (cohort of 4).
        assert report["tie_cohorts_multi"] == 2
        assert report["max_tie_cohort"] == 4

    def test_off_by_default(self):
        env = Environment()
        assert env.sanitize is False
        report = env.sanitize_report()
        assert report["tie_cohorts_multi"] == 0

    def test_env_var_arms_sanitizer(self, monkeypatch):
        monkeypatch.setenv("REPRO_SANITIZE", "1")
        assert Environment().sanitize is True
        monkeypatch.setenv("REPRO_SANITIZE", "0")
        assert Environment().sanitize is False
        # Explicit argument beats the environment.
        monkeypatch.setenv("REPRO_SANITIZE", "1")
        assert Environment(sanitize=False).sanitize is False


class TestSanitizeParity:
    """Sanitize mode must never change simulated results — only failure
    behavior. A small end-to-end service run must be bit-identical."""

    @pytest.fixture(scope="class")
    def workload(self):
        graph = memetracker_like(scale=0.03, seed=3)
        assets = GraphAssets(graph)
        queries = hotspot_workload(graph, num_hotspots=5,
                                   queries_per_hotspot=8, radius=2, hops=2,
                                   seed=1, csr=assets.csr_both)
        return graph, assets, queries

    @staticmethod
    def _run(graph, assets, queries, sanitize):
        config = ClusterConfig(routing="embed", num_processors=3,
                               num_storage_servers=2,
                               cache_capacity_bytes=2 << 20,
                               num_landmarks=12, min_separation=2, dim=6,
                               embed_method="lmds")
        with GraphService.open(graph, config, assets=assets,
                               sanitize=sanitize) as service:
            with service.session() as session:
                session.submit_many(queries)
                report = session.report()
            sanitize_report = service.env.sanitize_report()
        return report, sanitize_report

    def test_results_identical_and_zero_reports(self, workload):
        graph, assets, queries = workload
        plain, _ = self._run(graph, assets, queries, sanitize=False)
        sanitized, sreport = self._run(graph, assets, queries, sanitize=True)
        assert sreport["sanitize"] is True
        assert sreport["reports"] == []
        assert sanitized.makespan == plain.makespan
        assert len(sanitized.records) == len(plain.records)
        for a, b in zip(plain.records, sanitized.records):
            assert a == b  # full per-query records, dataclass equality
