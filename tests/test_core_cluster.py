"""Cluster-level integration tests: schemes, reports, determinism."""

import pytest

from repro import (
    ClusterConfig,
    ETHERNET_COSTS,
    GRoutingCluster,
    GraphAssets,
    run_workload,
)
from repro.core import ROUTING_CHOICES
from repro.datasets import memetracker_like
from repro.workloads import hotspot_workload


@pytest.fixture(scope="module")
def setup():
    graph = memetracker_like(scale=0.05, seed=2)
    assets = GraphAssets(graph)
    queries = hotspot_workload(graph, num_hotspots=10, queries_per_hotspot=10,
                               radius=2, hops=2, seed=1, csr=assets.csr_both)
    return graph, assets, queries


def _config(routing, **kwargs):
    defaults = dict(
        num_processors=4,
        num_storage_servers=2,
        cache_capacity_bytes=4 << 20,
        num_landmarks=16,
        min_separation=2,
        dim=6,
        embed_method="lmds",
    )
    defaults.update(kwargs)
    return ClusterConfig(routing=routing, **defaults)


class TestAllSchemesRun:
    @pytest.mark.parametrize("routing", ROUTING_CHOICES)
    def test_scheme_completes_workload(self, setup, routing):
        graph, assets, queries = setup
        report = GRoutingCluster(graph, _config(routing), assets=assets).run(
            queries
        )
        assert len(report.records) == len(queries)
        assert report.makespan > 0
        assert report.throughput() > 0
        assert report.routing == routing

    def test_unknown_scheme_rejected(self, setup):
        graph, assets, _queries = setup
        with pytest.raises(ValueError):
            GRoutingCluster(graph, _config("telepathy"), assets=assets)

    def test_zero_processors_rejected(self, setup):
        graph, assets, _queries = setup
        with pytest.raises(ValueError):
            GRoutingCluster(graph, _config("hash", num_processors=0),
                            assets=assets)


class TestReportInvariants:
    def test_response_le_sojourn_plus_decision(self, setup):
        graph, assets, queries = setup
        report = GRoutingCluster(graph, _config("hash"), assets=assets).run(
            queries
        )
        for record in report.records:
            # Sojourn covers queueing; response adds the routing decision.
            assert (
                record.response_time
                <= record.sojourn_time + record.decision_time + 1e-12
            )

    def test_per_processor_counts_sum(self, setup):
        graph, assets, queries = setup
        report = GRoutingCluster(graph, _config("embed"), assets=assets).run(
            queries
        )
        assert sum(report.per_processor_counts().values()) == len(queries)

    def test_summary_keys_stable(self, setup):
        graph, assets, queries = setup
        report = GRoutingCluster(graph, _config("hash"), assets=assets).run(
            queries
        )
        summary = report.summary()
        for key in ("throughput_qps", "mean_response_ms", "cache_hit_rate",
                    "stolen", "load_imbalance"):
            assert key in summary

    def test_percentiles_monotone(self, setup):
        graph, assets, queries = setup
        report = GRoutingCluster(graph, _config("hash"), assets=assets).run(
            queries
        )
        assert (
            report.percentile_response_time(50)
            <= report.percentile_response_time(95)
            <= report.percentile_response_time(100)
        )

    def test_utilizations_in_unit_interval(self, setup):
        graph, assets, queries = setup
        cluster = GRoutingCluster(graph, _config("hash"), assets=assets)
        cluster.run(queries)
        for u in cluster.processor_utilizations():
            assert 0.0 <= u <= 1.0
        for u in cluster.storage_utilizations():
            assert 0.0 <= u <= 1.0


class TestDeterminism:
    def test_same_config_same_report(self, setup):
        graph, assets, queries = setup

        def run():
            report = GRoutingCluster(
                graph, _config("embed"), assets=assets
            ).run(queries)
            return (
                report.makespan,
                report.total_cache_hits(),
                [r.processor for r in report.records],
            )

        assert run() == run()


class TestExpectedBehaviours:
    def test_smart_routing_beats_baseline_on_hits(self, setup):
        graph, assets, queries = setup
        hash_report = GRoutingCluster(graph, _config("hash"),
                                      assets=assets).run(queries)
        embed_report = GRoutingCluster(graph, _config("embed"),
                                       assets=assets).run(queries)
        assert embed_report.total_cache_hits() >= hash_report.total_cache_hits()

    def test_infiniband_faster_than_ethernet(self, setup):
        graph, assets, queries = setup
        fast = GRoutingCluster(graph, _config("hash"), assets=assets).run(
            queries
        )
        slow = GRoutingCluster(
            graph, _config("hash", costs=ETHERNET_COSTS), assets=assets
        ).run(queries)
        assert slow.mean_response_time() > fast.mean_response_time()

    def test_more_processors_more_throughput(self, setup):
        graph, assets, queries = setup
        one = GRoutingCluster(graph, _config("embed", num_processors=1),
                              assets=assets).run(queries)
        four = GRoutingCluster(graph, _config("embed", num_processors=4),
                               assets=assets).run(queries)
        assert four.throughput() > one.throughput()

    def test_tiny_cache_worse_than_no_cache(self, setup):
        graph, assets, queries = setup
        tiny = GRoutingCluster(
            graph, _config("next_ready", cache_capacity_bytes=2048),
            assets=assets,
        ).run(queries)
        nocache = GRoutingCluster(graph, _config("no_cache"),
                                  assets=assets).run(queries)
        assert tiny.mean_response_time() > nocache.mean_response_time()

    def test_materialized_storage_holds_graph(self, setup):
        graph, assets, queries = setup
        cluster = GRoutingCluster(
            graph, _config("hash", materialize_storage=True), assets=assets
        )
        assert sum(cluster.tier.load_distribution()) == graph.num_nodes

    def test_run_workload_convenience(self, setup):
        graph, assets, queries = setup
        report = run_workload(graph, queries[:10], _config("hash"),
                              assets=assets)
        assert len(report.records) == 10
