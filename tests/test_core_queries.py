"""Query-id allocation: determinism, scoping, parallel-stream disjointness."""

import pytest

from repro import QueryIdAllocator, query_ids_from, reset_query_ids
from repro.core import NeighborAggregationQuery


class TestQueryIdAllocator:
    def test_sequential_allocation(self):
        allocator = QueryIdAllocator()
        assert [allocator.allocate() for _ in range(3)] == [0, 1, 2]

    def test_start_and_stride_carve_disjoint_lattices(self):
        evens = QueryIdAllocator(start=0, stride=2)
        odds = QueryIdAllocator(start=1, stride=2)
        a = {evens.allocate() for _ in range(100)}
        b = {odds.allocate() for _ in range(100)}
        assert not a & b

    def test_reset_replays_identically(self):
        allocator = QueryIdAllocator(start=7, stride=3)
        first = [allocator.allocate() for _ in range(5)]
        allocator.reset(start=7)
        assert [allocator.allocate() for _ in range(5)] == first

    def test_reset_defaults_to_own_start(self):
        # A strided allocator must rewind onto its *own* lattice, not 0 —
        # otherwise a replay would collide with its partner lattice.
        odds = QueryIdAllocator(start=1, stride=2)
        [odds.allocate() for _ in range(4)]
        odds.reset()
        assert [odds.allocate() for _ in range(3)] == [1, 3, 5]

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            QueryIdAllocator(stride=0)
        with pytest.raises(ValueError):
            QueryIdAllocator(start=-1)
        with pytest.raises(ValueError):
            QueryIdAllocator().reset(-5)


class TestScopedAllocation:
    def test_query_ids_from_scopes_defaults(self):
        with query_ids_from(QueryIdAllocator(start=500)):
            inside = [NeighborAggregationQuery(node=n) for n in range(3)]
        outside = NeighborAggregationQuery(node=0)
        assert [q.query_id for q in inside] == [500, 501, 502]
        assert outside.query_id not in {500, 501, 502}

    def test_scope_restores_previous_allocator_on_error(self):
        before = NeighborAggregationQuery(node=0).query_id
        with pytest.raises(RuntimeError):
            with query_ids_from(QueryIdAllocator(start=10_000)):
                raise RuntimeError("boom")
        after = NeighborAggregationQuery(node=0).query_id
        assert after == before + 1

    def test_reset_query_ids_applies_to_active_scope(self):
        with query_ids_from(QueryIdAllocator(start=42)) as allocator:
            assert NeighborAggregationQuery(node=0).query_id == 42
            reset_query_ids(start=42)
            assert allocator.allocate() == 42

    def test_parallel_generators_never_collide(self):
        streams = []
        for k in range(3):
            with query_ids_from(QueryIdAllocator(start=k, stride=3)):
                streams.append(
                    [NeighborAggregationQuery(node=n) for n in range(20)]
                )
        ids = [q.query_id for stream in streams for q in stream]
        assert len(ids) == len(set(ids))

    def test_nested_scopes_restore_level_by_level(self):
        # Nesting documented in query_ids_from: the inner scope shadows
        # the outer one, and exiting it resumes the outer allocator
        # exactly where it left off (not at the process default).
        outer = QueryIdAllocator(start=100)
        inner = QueryIdAllocator(start=200)
        with query_ids_from(outer):
            first = NeighborAggregationQuery(node=0)
            with query_ids_from(inner):
                shadowed = NeighborAggregationQuery(node=0)
                with query_ids_from(outer):
                    # Re-entering an allocator continues its sequence.
                    reentered = NeighborAggregationQuery(node=0)
            resumed = NeighborAggregationQuery(node=0)
        assert [q.query_id for q in (first, shadowed, reentered, resumed)] \
            == [100, 200, 101, 102]

    def test_nested_scope_unwinds_to_outer_on_error(self):
        outer = QueryIdAllocator(start=300)
        with query_ids_from(outer):
            with pytest.raises(RuntimeError):
                with query_ids_from(QueryIdAllocator(start=900)):
                    raise RuntimeError("boom")
            assert NeighborAggregationQuery(node=0).query_id == 300

    def test_reset_query_ids_targets_innermost_scope_only(self):
        outer = QueryIdAllocator(start=50)
        with query_ids_from(outer):
            outer.allocate()  # 50
            with query_ids_from(QueryIdAllocator(start=70)) as inner:
                inner.allocate()  # 70
                reset_query_ids()
                assert inner.allocate() == 70  # inner rewound...
            assert outer.allocate() == 51      # ...outer untouched

    def test_lazy_streams_capture_allocator_at_creation(self):
        # A *_stream built inside a scope keeps the scope's ids even when
        # consumed after the scope exits (generators run late).
        from repro.graph import ring_of_cliques
        from repro.workloads import uniform_stream

        graph = ring_of_cliques(4, 5)
        with query_ids_from(QueryIdAllocator(start=1, stride=2)):
            odds = uniform_stream(graph, num_queries=10, seed=1)
        with query_ids_from(QueryIdAllocator(start=0, stride=2)):
            evens = uniform_stream(graph, num_queries=10, seed=2)
        odd_ids = [q.query_id for q in odds]      # consumed outside scopes
        even_ids = [q.query_id for q in evens]
        assert odd_ids == list(range(1, 21, 2))
        assert even_ids == list(range(0, 20, 2))

    @pytest.mark.parametrize("stream_name,kwargs", [
        ("hotspot_stream", dict(num_hotspots=2, queries_per_hotspot=5)),
        ("zipfian_stream", dict(num_queries=10, skew=1.5)),
        ("ppr_stream", dict(num_queries=10, walks=2, steps=2)),
        ("k_reach_stream", dict(num_queries=10, num_sources=3)),
        ("sample_stream", dict(num_queries=10, fanouts=(3, 2))),
    ])
    def test_every_stream_family_captures_scope_allocator(self, stream_name,
                                                          kwargs):
        # The documented contract holds for *every* generator family,
        # including the new operator streams: the allocator is captured at
        # stream creation, not at (late) consumption.
        import repro.workloads as workloads
        from repro.graph import ring_of_cliques

        graph = ring_of_cliques(4, 5)
        stream_fn = getattr(workloads, stream_name)
        default_next = NeighborAggregationQuery(node=0).query_id + 1
        with query_ids_from(QueryIdAllocator(start=1000)):
            stream = stream_fn(graph, seed=3, **kwargs)
        consumed_outside = [q.query_id for q in stream]
        assert consumed_outside == list(range(1000, 1010))
        # The process-default allocator never advanced on the stream's
        # behalf.
        assert NeighborAggregationQuery(node=0).query_id == default_next
