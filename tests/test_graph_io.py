"""Round-trip tests for graph serialization."""

import pytest

from repro.graph import Graph, erdos_renyi
from repro.graph.io import load_npz, read_edge_list, save_npz, write_edge_list


@pytest.fixture
def sample():
    g = erdos_renyi(30, 60, seed=7)
    g.add_node(999)  # isolated node must survive round trips
    return g


def _same_graph(a, b):
    return (
        sorted(a.nodes()) == sorted(b.nodes())
        and sorted(a.edges()) == sorted(b.edges())
    )


def test_edge_list_round_trip(tmp_path, sample):
    path = tmp_path / "graph.tsv"
    write_edge_list(sample, path)
    loaded = read_edge_list(path)
    # Edge lists cannot carry isolated nodes; compare edges only.
    assert sorted(loaded.edges()) == sorted(sample.edges())


def test_edge_list_skips_comments(tmp_path):
    path = tmp_path / "g.tsv"
    path.write_text("# a comment\n1\t2\n\n2\t3\n")
    g = read_edge_list(path)
    assert sorted(g.edges()) == [(1, 2), (2, 3)]


def test_edge_list_malformed_line_raises(tmp_path):
    path = tmp_path / "bad.tsv"
    path.write_text("1\t2\t3\n")
    with pytest.raises(ValueError):
        read_edge_list(path)


def test_npz_round_trip(tmp_path, sample):
    path = tmp_path / "graph.npz"
    save_npz(sample, path)
    loaded = load_npz(path)
    assert _same_graph(sample, loaded)


def test_npz_preserves_isolated_nodes(tmp_path):
    g = Graph()
    g.add_node(1)
    g.add_node(2)
    g.add_edge(3, 4)
    path = tmp_path / "iso.npz"
    save_npz(g, path)
    loaded = load_npz(path)
    assert _same_graph(g, loaded)
