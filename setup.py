"""Legacy setup shim: enables editable installs with older setuptools."""

from setuptools import setup

setup()
