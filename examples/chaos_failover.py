#!/usr/bin/env python
"""Elastic topology end-to-end: kill -> failover -> recover -> join.

The paper's cluster is static: membership is fixed before the first
query and nothing ever fails. The topology layer removes that
assumption. This example serves one open-loop query stream while a
scripted chaos schedule exercises every elastic path:

1. **Outage** — a storage server dies mid-run. Queries that would read
   from it back off and retry; the repair loop re-homes its records
   onto live servers (demand-reported keys first — the ones readers are
   actually blocked on), and the placement directory redirects reads to
   the new copies while the server is down.
2. **Recovery** — the server comes back. Fail-back drains the
   directory: every re-homed record is copied back to its hash home,
   until the cluster is byte-for-byte a static hash-partitioned tier
   again.
3. **Join** — a cold processor joins late. The hash router moves a
   bounded, fair share of slots to it (nothing else changes owner), and
   its cold cache warms up on live traffic.

Run:  python examples/chaos_failover.py
(REPRO_BENCH_SCALE scales the graph, e.g. 0.05 for a CI smoke run.)
"""

from repro import ClusterConfig, GraphService, TopologyConfig
from repro.bench import bench_scale
from repro.core import ChaosEvent, NeighborAggregationQuery
from repro.datasets import webgraph_like
from repro.workloads import poisson_arrivals


def main() -> None:
    graph = webgraph_like(scale=bench_scale(default=0.2), seed=1)
    print(f"Graph: {graph.num_nodes:,} nodes, {graph.num_edges:,} edges")

    config = ClusterConfig(
        routing="hash",
        num_processors=4,
        num_storage_servers=4,
        cache_capacity_bytes=8 << 10,  # starved: the outage must hurt
        steal=False,  # so the joiner's earned share is visible
        topology=TopologyConfig(
            failover=True,
            repair_interval_s=1e-5,
            repair_byte_budget=2 << 10,  # small legs: repair writes
            # share the servers' FIFO pipelines with live reads
            retry_limit=4096,
            retry_backoff_s=20e-6,
            retry_backoff_cap_s=500e-6,
        ),
    )

    nodes = sorted(graph.nodes())
    queries = [
        NeighborAggregationQuery(node=nodes[i % len(nodes)], hops=2)
        for i in range(400)
    ]
    rate = 10_000.0
    span_s = len(queries) / rate
    fail_at, recover_at, join_at = (
        0.2 * span_s, 0.5 * span_s, 0.65 * span_s
    )
    arrivals = poisson_arrivals(queries, rate=rate, tenant="app", seed=11)

    with GraphService.open(graph, config) as service:
        service.topology.schedule([
            ChaosEvent(at=fail_at, action="fail_server", target=0),
            ChaosEvent(at=recover_at, action="recover_server", target=0),
            ChaosEvent(at=join_at, action="add_processor"),
        ])
        with service.session() as session:
            session.serve(arrivals)
            report = session.report()
        snap = service.topology.snapshot()

    summary = report.summary()
    print(f"\nServed {len(report.records)} queries through the schedule "
          f"(outage {fail_at * 1e3:.2f}ms -> {recover_at * 1e3:.2f}ms, "
          f"join at {join_at * 1e3:.2f}ms):")
    print(f"  mean sojourn:      {report.mean_sojourn_time() * 1e3:.4f} ms")
    print(f"  p99 sojourn:       "
          f"{report.percentile_sojourn_time(99) * 1e3:.4f} ms")
    print(f"  storage downtime:  "
          f"{summary['storage_downtime_s'] * 1e3:.2f} ms "
          f"({summary['storage_outages']} outage)")
    print(f"  recovery time:     {max(report.recovery_times_s()) * 1e3:.2f}"
          " ms")

    print("\nWhat the elastic machinery did meanwhile:")
    print(f"  storage retries:   {snap['storage_retries']}")
    print(f"  records re-homed:  {snap['repair_records']} "
          f"({snap['repair_bytes']:,} bytes through the write pipelines)")
    print(f"  demand repairs:    {snap['demand_repairs']} "
          "(keys readers were blocked on, re-homed first)")
    print(f"  fail-backs:        {snap['failbacks']} "
          "(copied home after recovery)")
    print(f"  membership epoch:  {snap['epoch']} "
          "(fail + recover + join)")

    for warm in snap["warmup"]:
        print(f"  joiner (proc {warm['processor']}): "
              f"{snap['moved_entries']} hash slots moved to it, "
              f"{warm['queries_executed']} queries executed since join, "
              f"cache hit rate {warm['cache_hit_rate']:.2f}")

    # The run converged: directory drained, pure hash placement again.
    assert len(report.records) == len(queries)
    assert snap["repair_records"] > 0
    assert snap["failbacks"] > 0
    assert snap["failover_keys"] == 0, "fail-back must drain the directory"
    assert snap["suspect_writes"] == 0
    assert summary["storage_outages"] == 1
    print("\nOK: kill -> retry/repair/redirect -> fail-back -> bounded "
          "join, end-to-end.")


if __name__ == "__main__":
    main()
