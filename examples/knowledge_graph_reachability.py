#!/usr/bin/env python
"""Label-constrained exploration of a knowledge graph + fault tolerance.

Two parts:

1. A miniature Freebase-style labeled knowledge graph queried through the
   *materialized* storage path (real adjacency records with labels flowing
   through the log-structured store), demonstrating the paper's Figure 3
   data model and the h-hop reachability query.
2. A processor-failure drill on the decoupled cluster: one query processor
   is removed mid-workload and the router redistributes its queued work —
   no routing table to rebuild, no partition to migrate (§2.3).

Run:  python examples/knowledge_graph_reachability.py
"""


from repro import ClusterConfig, GraphAssets, GraphService
from repro.datasets import freebase_like
from repro.graph import Graph, bidirectional_reachability
from repro.storage import StorageTier
from repro.sim import Environment
from repro.workloads import hotspot_workload


def figure3_graph() -> Graph:
    """The paper's Figure 3 example: Jerry Yang / Yahoo! / Stanford."""
    g = Graph()
    names = {0: "Jerry Yang", 1: "Yahoo!", 2: "Stanford", 3: "Sunnyvale",
             4: "California"}
    for node, name in names.items():
        g.add_node(node, label=name)
    g.add_edge(0, 1, label="founded")
    g.add_edge(0, 2, label="education")
    g.add_edge(0, 3, label="places lived")
    g.add_edge(1, 3, label="headquarters in")
    g.add_edge(3, 4, label="part of")
    return g


def demo_storage_records() -> None:
    print("Part 1: key-value storage of a labeled knowledge graph")
    graph = figure3_graph()
    env = Environment()
    tier = StorageTier(env, num_servers=2)
    tier.load_graph(graph)

    fetch = env.process(tier.fetch_process([0, 1]))
    records = env.run(until=fetch)
    jerry = records[0]
    print(f"  record[{jerry.node_label}]: "
          f"out={[(v, l) for v, l in jerry.out_edges]}")
    yahoo = records[1]
    print(f"  record[{yahoo.node_label}]: "
          f"in={[(v, l) for v, l in yahoo.in_edges]} "
          f"(reverse edges stored, per Figure 3)")
    # Reachability uses both directions: California from Jerry Yang.
    print(f"  'Jerry Yang' -> 'California' within 2 hops: "
          f"{bidirectional_reachability(graph, 0, 4, 2)}")
    print(f"  'Jerry Yang' -> 'California' within 3 hops: "
          f"{bidirectional_reachability(graph, 0, 4, 3)}\n")


def demo_fault_tolerance() -> None:
    print("Part 2: processor failure during a reachability workload")
    graph = freebase_like(scale=0.5, seed=4)
    assets = GraphAssets(graph)
    print(f"  knowledge graph: {graph.num_nodes:,} entities, "
          f"{graph.num_edges:,} relations")
    queries = hotspot_workload(
        graph, num_hotspots=30, queries_per_hotspot=10, radius=2, hops=3,
        mix=("reachability",), seed=9, csr=assets.csr_both,
    )
    config = ClusterConfig(
        routing="landmark", num_processors=4, num_storage_servers=2,
        cache_capacity_bytes=4 << 20, num_landmarks=32, min_separation=2,
    )
    service = GraphService.open(graph, config, assets=assets)
    session = service.session()
    session.submit_many(queries)

    # Let a third of the workload finish, then lose processor 0.
    target = len(queries) // 3
    router = service.router

    def failure_injector():
        while session.completed < target:
            yield service.env.timeout(1e-4)
        moved = router.remove_processor(0)
        print(f"  processor 0 removed after {session.completed} queries; "
              f"{moved} queued queries redistributed")

    service.env.process(failure_injector())
    session.drain()
    report = session.report()
    service.close()

    done_by = {p: 0 for p in range(4)}
    for record in report.records:
        done_by[record.processor] += 1
    reachable = sum(1 for r in report.records if r.stats.result)
    print(f"  all {len(report.records)} queries completed; "
          f"{reachable} targets reachable")
    print(f"  queries per processor after failure: {done_by}")
    print(
        "  Decoupling at work: survivors served every remaining query "
        "without\n  any repartitioning, because no processor owns any part "
        "of the graph."
    )


def main() -> None:
    demo_storage_records()
    demo_fault_tolerance()


if __name__ == "__main__":
    main()
