#!/usr/bin/env python
"""Dynamic placement end-to-end: heat -> replicate -> route-to-replica.

The storage tier normally places every record with a murmur hash,
forever. The dynamic placement subsystem overlays that with a small
directory of *exceptions*: records hot enough to earn extra copies (or a
better home), found by decayed heat counters and moved through the same
storage write pipelines live queries fetch from.

This example walks the full lifecycle twice:

1. **Serving path** — a skewed, phase-shifting workload drives heat
   through the gather path; the periodic planner replicates the hot
   head; reads fan out to the least-loaded replica (read-any); the
   report itemizes every byte the subsystem copied.
2. **Manual path** — a tiny ring service where we stuff heat and skew
   the load proxy by hand, so one `plan()` round visibly *migrates* a
   record off an overloaded server, and a later round — after the heat
   has decayed — *releases* it back to its hash home.

Run:  python examples/hot_replication.py
(REPRO_BENCH_SCALE scales the graph, e.g. 0.05 for a CI smoke run.)
"""

import numpy as np

from repro import ClusterConfig, GraphService
from repro.bench import bench_scale
from repro.core import PlacementConfig
from repro.datasets import webgraph_like
from repro.graph import Graph
from repro.workloads import shifting_hotspot_workload


def serving_lifecycle() -> None:
    """Heat tracked from live queries; the loop replicates; reads follow."""
    graph = webgraph_like(scale=bench_scale(default=0.2), seed=1)
    print(f"Graph: {graph.num_nodes:,} nodes, {graph.num_edges:,} edges")

    # A hair-trigger loop so the lifecycle is visible in a short run;
    # fig_repartition tunes these against calibrated capacity instead.
    placement = PlacementConfig(
        interval_s=2e-4,
        half_life_s=2e-3,
        heat_threshold=3.0,
        replicate_threshold=3.0,
        replicas=2,
        top_k=16,
        round_byte_budget=64 << 10,
        release_fraction=0.05,
    )
    config = ClusterConfig(
        routing="hash", num_processors=4, num_storage_servers=4,
        cache_capacity_bytes=4 << 10,  # starved: storage sees the skew
        embed_method="lmds", placement=placement,
    )

    workload = shifting_hotspot_workload(
        graph, num_phases=3, queries_per_phase=200, radius=2, hops=2,
        hot_fraction=0.9, skew=1.2, seed=7,
    )

    with GraphService.open(graph, config) as service:
        with service.session() as session:
            for query in workload:
                session.submit(query)
            session.drain()
            report = session.report()
        manager = service.placement
        replicated = [
            entry for entry in manager.directory.entries()
            if len(entry.replicas) > 1
        ]

    stats = report.placement
    print("\nPlacement loop after serving a shifting hotspot:")
    print(f"  planning rounds:    {stats['rounds']}")
    print(f"  heat touches:       {stats['heat_touches']:,}")
    print(f"  replications:       {stats['replications']}")
    print(f"  releases:           {stats['releases']}")
    print(f"  copied bytes:       {report.migration_bytes():,}")
    print(f"  active exceptions:  {stats['active_placements']}")

    print("\nPer-server write/read counters (copies are accounted, not free):")
    for row in report.per_server_stats():
        top = ", ".join(f"{key}:{heat:.1f}" for key, heat in row["top_heat"])
        print(f"  server {row['server']}: {row['requests_served']:>5} reads, "
              f"{row['bytes_written']:>8,} bytes written   hot: [{top}]")

    assert stats["replications"] > 0, "hot head must earn extra copies"
    assert report.migration_bytes() > 0
    assert replicated, "directory must hold replicated entries"
    sample = replicated[0]
    print(f"\nRead-any: record {sample.key} now lives on servers "
          f"{list(sample.replicas)} (home {sample.home}); gathers pick the "
          "least-loaded live copy per request.")


def manual_lifecycle() -> None:
    """One record migrated off an overloaded server, then released."""
    graph = Graph()
    for i in range(16):
        graph.add_edge(i, (i + 1) % 16)

    placement = PlacementConfig(
        interval_s=1e9,  # the loop stays quiet; we drive plan() by hand
        half_life_s=5.0, heat_threshold=2.0, replicate_threshold=1e9,
        migrate_margin=0.25, release_fraction=0.5,
    )
    config = ClusterConfig(
        routing="hash", num_processors=2, num_storage_servers=2,
        cache_capacity_bytes=1 << 20, num_landmarks=6, min_separation=1,
        dim=3, embed_method="lmds", materialize_storage=True,
        placement=placement,
    )
    with GraphService.open(graph, config) as service:
        manager = service.placement
        tier = service.tier
        node = 0
        home = tier.partitioner(node, tier.num_servers)
        print(f"\nManual lifecycle: record {node} hash-homes on server {home}")

        # Make the record hot and its holder look overloaded.
        manager.heat.touch(
            np.array([service.assets.compact[node]]), service.env.now,
            weight=5.0,
        )
        tier.servers[home].requests_served += 100
        moves = manager.plan()
        assert [m.kind for m in moves] == ["migrate"]
        proc = service.env.process(manager._execute(moves))
        service.env.run(until=proc)
        target = manager.directory.get(node).replicas[0]
        print(f"  migrated -> server {target} at t={service.env.now:.6f}s "
              "(copied through the storage write pipeline)")
        assert tier.locate(node) is tier.servers[target]
        assert node in tier.servers[target].store
        assert node not in tier.servers[home].store

        # Long idle: heat decays below the release floor, the planner
        # copies the record back home and drops the directory entry.
        idle = service.env.timeout(100.0)
        service.env.run(until=idle)
        moves = manager.plan()
        assert [m.kind for m in moves] == ["restore"]
        proc = service.env.process(manager._execute(moves))
        service.env.run(until=proc)
        assert manager.directory.get(node) is None
        assert tier.locate(node) is tier.servers[home]
        print(f"  cooled -> restored to server {home}; directory empty again "
              f"({manager.restores} restore, {manager.migrations} migration)")


def main() -> None:
    serving_lifecycle()
    manual_lifecycle()
    print("\nOK: heat -> replicate/migrate -> route-to-replica -> release, "
          "end-to-end.")


if __name__ == "__main__":
    main()
