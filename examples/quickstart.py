#!/usr/bin/env python
"""Quickstart: build a decoupled cluster and compare routing strategies.

Builds a web-graph analogue, generates the paper's hotspot workload, and
runs the same queries through all five routing schemes on one simulated
cluster layout (1 router + 7 query processors + 4 storage servers).

Run:  python examples/quickstart.py
"""

from repro import ClusterConfig, GRoutingCluster, GraphAssets
from repro.datasets import webgraph_like
from repro.workloads import hotspot_workload

SCHEMES = ("no_cache", "next_ready", "hash", "landmark", "embed")


def main() -> None:
    print("Building the WebGraph analogue ...")
    graph = webgraph_like(scale=0.3, seed=1)
    assets = GraphAssets(graph)  # shared, reusable preprocessing
    print(f"  {graph.num_nodes:,} nodes, {graph.num_edges:,} edges")

    print("Generating the hotspot workload (40 hotspots x 10 queries) ...")
    queries = hotspot_workload(
        graph,
        num_hotspots=40,
        queries_per_hotspot=10,
        radius=2,
        hops=2,
        seed=7,
        csr=assets.csr_both,
    )

    print(f"Running {len(queries)} queries under each routing scheme:\n")
    header = (f"{'scheme':>12} | {'throughput':>12} | {'response':>10} | "
              f"{'hit rate':>8} | {'stolen':>6}")
    print(header)
    print("-" * len(header))
    for scheme in SCHEMES:
        config = ClusterConfig(
            routing=scheme,
            num_processors=7,
            num_storage_servers=4,
            cache_capacity_bytes=8 << 20,
            embed_method="lmds",
        )
        cluster = GRoutingCluster(graph, config, assets=assets)
        report = cluster.run(queries)
        print(
            f"{scheme:>12} | {report.throughput():>10.0f}/s | "
            f"{report.mean_response_time() * 1e6:>8.1f}us | "
            f"{report.cache_hit_rate():>8.3f} | "
            f"{report.stolen_count():>6}"
        )

    print(
        "\nSmart routing (landmark/embed) sends queries on nearby nodes to "
        "the same\nprocessor, so its cache already holds most of each "
        "neighbourhood — fewer\nstorage-tier round trips, lower response "
        "time, higher throughput."
    )


if __name__ == "__main__":
    main()
