#!/usr/bin/env python
"""Quickstart: open a graph service and compare routing strategies.

Builds a web-graph analogue, opens a long-lived :class:`GraphService`
(1 router + 7 query processors + 4 storage servers) per routing scheme,
and serves the paper's hotspot workload through a query session. A second
session on the adaptive service then shows what the one-shot harness
cannot: caches stay warm across sessions, so steady-state traffic runs
faster than the cold start.

Run:  python examples/quickstart.py
(REPRO_BENCH_SCALE scales the graph, e.g. 0.05 for a CI smoke run.)
"""

from repro import ClusterConfig, GraphService
from repro.bench import bench_scale
from repro.core import GraphAssets
from repro.datasets import webgraph_like
from repro.workloads import hotspot_workload

SCHEMES = ("no_cache", "next_ready", "hash", "landmark", "embed", "adaptive")


def main() -> None:
    print("Building the WebGraph analogue ...")
    graph = webgraph_like(scale=bench_scale(default=0.3), seed=1)
    assets = GraphAssets(graph)  # shared, reusable preprocessing
    print(f"  {graph.num_nodes:,} nodes, {graph.num_edges:,} edges")

    print("Generating the hotspot workload (40 hotspots x 10 queries) ...")
    queries = hotspot_workload(
        graph,
        num_hotspots=40,
        queries_per_hotspot=10,
        radius=2,
        hops=2,
        seed=7,
        csr=assets.csr_both,
    )

    print(f"Serving {len(queries)} queries under each routing scheme:\n")
    header = (f"{'scheme':>12} | {'throughput':>12} | {'response':>10} | "
              f"{'hit rate':>8} | {'stolen':>6}")
    print(header)
    print("-" * len(header))
    adaptive_service = None
    for scheme in SCHEMES:
        config = ClusterConfig(
            routing=scheme,
            num_processors=7,
            num_storage_servers=4,
            cache_capacity_bytes=8 << 20,
            embed_method="lmds",
        )
        service = GraphService.open(graph, config, assets=assets)
        with service.session() as session:
            session.stream(queries)
            report = session.report()
        print(
            f"{scheme:>12} | {report.throughput():>10.0f}/s | "
            f"{report.mean_response_time() * 1e6:>8.1f}us | "
            f"{report.cache_hit_rate():>8.3f} | "
            f"{report.stolen_count():>6}"
        )
        if scheme == "adaptive":
            adaptive_service = service  # keep it warm for the demo below
        else:
            service.close()

    print(
        "\nSmart routing (landmark/embed) sends queries on nearby nodes to "
        "the same\nprocessor, so its cache already holds most of each "
        "neighbourhood — fewer\nstorage-tier round trips, lower response "
        "time, higher throughput."
    )

    # The service is long-lived: a second session reuses warm caches (and
    # the adaptive strategy's learned per-class commitments).
    with adaptive_service.session() as session:
        session.stream(queries)
        warm = session.report()
    adaptive_service.close()
    print(
        f"\nWarm continuation (adaptive, second session on the same "
        f"service):\n  mean response {warm.mean_response_time() * 1e6:.1f}us, "
        f"hit rate {warm.cache_hit_rate():.3f} — "
        "no cold start, no re-audition."
    )


if __name__ == "__main__":
    main()
