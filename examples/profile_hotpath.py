#!/usr/bin/env python
"""Profile the simulation hot path over a scaled-down operator mix.

Runs the six-operator mixed workload under adaptive routing inside
cProfile and prints the top entries by *cumulative* time — the view that
shows where a query's wall clock actually goes (kernel dispatch, gather,
cache probes, storage round trips) rather than just the leaf functions.

This is the tool that motivated the hot-path overhaul: before it, the
profile was dominated by generator trampolines and per-event allocation
in ``repro.sim``; after, by the numpy work the simulation actually models.
Re-run it after touching the kernel, ``gather_nodes`` or the cache to see
what the change did.

Run:  python examples/profile_hotpath.py
(REPRO_BENCH_SCALE scales the graph; the default 0.15 keeps one pass
under ~10 seconds on a laptop.)
"""

import cProfile
import pstats
from dataclasses import replace

from repro.bench import bench_scale
from repro.bench.adaptive import SUBMIT_BATCH
from repro.bench.experiments import scheme_config
from repro.bench.harness import get_context
from repro.bench.operator_mix import operator_mix_workload
from repro.core import GraphService

#: How many rows of the cumulative profile to print.
TOP = 25


def serve_mix(ctx, queries) -> int:
    config = replace(scheme_config("adaptive"), submit_batch=SUBMIT_BATCH)
    with GraphService.open(ctx.graph, config, assets=ctx.assets) as service:
        with service.session() as session:
            session.stream(queries)
            report = session.report()
        events = service.env.events_processed
    print(f"  {len(report.records)} queries, {events:,} kernel events, "
          f"mean response {report.mean_response_time() * 1e6:.1f} us")
    return events


def main() -> None:
    scale = bench_scale(default=0.15)
    print(f"Building context at scale {scale} ...")
    ctx = get_context("webgraph", scale=scale)
    queries = operator_mix_workload(ctx)
    print(f"Profiling the six-operator mix ({len(queries)} queries) ...")

    profiler = cProfile.Profile()
    profiler.enable()
    serve_mix(ctx, queries)
    profiler.disable()

    stats = pstats.Stats(profiler)
    stats.sort_stats("cumulative").print_stats(TOP)
    print("Reading the profile: Environment.run + Process._resume are the "
          "kernel; gather_nodes/_ServerFetch are storage round trips; "
          "ProcessorCache.get_many is the probe path. If a new entry "
          "crowds these out, that is the next optimisation target.")


if __name__ == "__main__":
    main()
