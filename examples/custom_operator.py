#!/usr/bin/env python
"""Register a custom query operator — zero edits under ``src/repro/core``.

The query layer resolves *everything* — engine dispatch, cost
classification, routing keys, workload generation — through the operator
registry, so opening a new workload is a registration, not a core patch.
This example adds a **two-ended distance probe**: given two anchor nodes,
fetch both h-hop frontiers' first layers and report whether they touch
(a cheap "are these users adjacent communities" check). It exercises the
whole integration surface:

* a frozen ``Query`` dataclass (two anchors);
* an executor built on the public :func:`repro.core.gather_nodes`
  primitive (cache probes + storage fetches + admission);
* a ``point`` cost class feeding adaptive routing's per-class arms;
* a multi-anchor routing-key extractor (both anchors vote on placement);
* a workload factory so the generic streams accept ``mix=("bridge",)``.

Run:  python examples/custom_operator.py
(REPRO_BENCH_SCALE scales the graph, e.g. 0.05 for a CI smoke run.)
"""

from dataclasses import dataclass

import numpy as np

from repro import ClusterConfig, GraphService
from repro.bench import bench_scale
from repro.core import (
    GraphAssets,
    Query,
    QueryOperator,
    QueryStats,
    default_registry,
    gather_nodes,
)
from repro.datasets import webgraph_like
from repro.workloads import interleave, uniform_stream


# -- 1. the query dataclass ---------------------------------------------------
@dataclass(frozen=True)
class BridgeProbeQuery(Query):
    """Do the direct neighborhoods of ``node`` and ``other`` intersect?"""

    other: int = 0


# -- 2. the executor (a simulation process, like every built-in) --------------
def execute_bridge_probe(processor, query: BridgeProbeQuery):
    csr = processor.assets.csr_both
    stats = QueryStats()
    compact = processor.assets.compact
    left = compact[query.node]
    right = compact.get(query.other)
    if right is None:
        stats.result = False
        return stats
    # Fetch both anchors' records (the probe reads both adjacency lists).
    # `yield from` runs the gather inline in this process; wrapping it in
    # env.process(...) also works and allows overlapping several gathers.
    anchors = np.unique(np.array([left, right], dtype=np.int64))
    yield from gather_nodes(processor, anchors, stats)
    left_row = csr.neighbors_of(left)
    right_row = csr.neighbors_of(right)
    stats.result = bool(np.intersect1d(left_row, right_row).size > 0)
    return stats


# -- 3. the workload factory --------------------------------------------------
def make_bridge_probe(node, query_id, hops, ball, rng):
    del hops  # depth-free probe
    other = int(ball[rng.integers(0, len(ball))])
    return BridgeProbeQuery(node=node, query_id=query_id, other=other)


# -- 4. registration: the complete integration surface ------------------------
BRIDGE_OPERATOR = QueryOperator(
    name="bridge",
    query_type=BridgeProbeQuery,
    executor=execute_bridge_probe,
    cost_class="point",
    routing_keys=lambda q: (q.node, q.other),
    workload_factory=make_bridge_probe,
)


def main() -> None:
    default_registry.register(BRIDGE_OPERATOR)
    print("Registered operators:", ", ".join(default_registry.names()))

    graph = webgraph_like(scale=bench_scale(default=0.2), seed=1)
    assets = GraphAssets(graph)
    print(f"Graph: {graph.num_nodes:,} nodes, {graph.num_edges:,} edges")

    # The custom operator drops straight into the generic streams,
    # interleaved with a built-in one...
    workload = interleave([
        uniform_stream(graph, num_queries=300, mix=("bridge",), seed=3,
                       csr=assets.csr_both),
        uniform_stream(graph, num_queries=300, hops=2, mix=("aggregation",),
                       seed=4, csr=assets.csr_both),
    ], seed=5)

    # ... and through the full serving path: router + adaptive routing +
    # sessions, with zero edits under src/repro/core/.
    config = ClusterConfig(routing="adaptive", num_processors=5,
                           num_storage_servers=3,
                           cache_capacity_bytes=4 << 20, embed_method="lmds")
    with GraphService.open(graph, config, assets=assets) as service:
        with service.session() as session:
            session.stream(workload)
            report = session.report()

    by_operator = report.per_operator_stats()
    print("\nPer-operator breakdown (counts + mean response):")
    for name, stats in by_operator.items():
        print(f"  {name:>12}: {stats['queries']:>4} queries, "
              f"{stats['mean_response_ms'] * 1e3:8.2f} us mean")

    bridge_records = [r for r in report.records if r.operator == "bridge"]
    assert len(bridge_records) == 300, "every custom query must complete"
    assert by_operator["bridge"]["queries"] == 300
    assert all(r.query_class == "point" for r in bridge_records), \
        "custom cost class must flow through to records"
    assert any(isinstance(r.stats.result, bool) for r in bridge_records)
    routed_via = {r.routed_via for r in bridge_records}
    assert routed_via, "records must carry routing decisions"
    print(f"\nBridge probes routed via: {sorted(routed_via)}")
    print("OK: custom operator served end-to-end "
          "(router + adaptive routing + sessions).")


if __name__ == "__main__":
    main()
