#!/usr/bin/env python
"""Ego-centric queries on a social network with a shifting hotspot.

Models the paper's motivating LinkedIn scenario (§1): ego-centric queries
("who is within 2 hops of this member?") concentrated around trending
profiles, where the trending region moves over time. Embed routing adapts
its per-processor EMA to each new hotspot without any re-partitioning —
the experiment shows cache hit rate recovering after every shift.

Run:  python examples/social_network_analysis.py
"""

import numpy as np

from repro import ClusterConfig, GRoutingCluster, GraphAssets
from repro.core import NeighborAggregationQuery, RandomWalkQuery
from repro.graph import community_graph


def shifting_hotspot_workload(assets, phases=4, regions_per_phase=10,
                              queries_per_region=12, seed=3):
    """Each phase interleaves queries over a fresh set of trending regions.

    Interleaving is what separates the schemes: hash routing sprays every
    region across the whole tier, while embed routing pins each region to
    one processor's cache.
    """
    rng = np.random.default_rng(seed)
    csr = assets.csr_both
    eligible = np.flatnonzero(csr.degrees() > 0)
    workload = []
    for _phase in range(phases):
        balls = []
        for _ in range(regions_per_phase):
            center = int(eligible[rng.integers(0, eligible.size)])
            ball = np.flatnonzero(csr.bfs_distances([center], max_hops=2) >= 0)
            balls.append(csr.node_ids[ball])
        for i in range(queries_per_region):
            for ball_ids in balls:  # round-robin across trending regions
                node = int(ball_ids[rng.integers(0, ball_ids.size)])
                if i % 3 == 2:
                    workload.append(RandomWalkQuery(
                        node=node, steps=2, seed=int(rng.integers(2**31))))
                else:
                    workload.append(NeighborAggregationQuery(node=node, hops=2))
    return workload


def main() -> None:
    print("Building a community-structured social network ...")
    graph = community_graph(150, 130, intra_degree=8, inter_degree=0.4,
                            seed=2)
    assets = GraphAssets(graph)
    print(f"  {graph.num_nodes:,} members, {graph.num_edges:,} links")

    queries = shifting_hotspot_workload(assets)
    phases = 4
    per_phase = len(queries) // phases
    print(f"Workload: {phases} trending phases x {per_phase} queries "
          f"(10 interleaved regions each)\n")

    for scheme in ("hash", "embed"):
        config = ClusterConfig(
            routing=scheme,
            num_processors=7,
            num_storage_servers=4,
            cache_capacity_bytes=8 << 20,
            embed_method="lmds",
            num_landmarks=48,
        )
        cluster = GRoutingCluster(graph, config, assets=assets)
        report = cluster.run(queries)
        print(f"--- {scheme} routing ---")
        for phase in range(phases):
            chunk = report.records[phase * per_phase:(phase + 1) * per_phase]
            hits = sum(r.stats.cache_hits for r in chunk)
            misses = sum(r.stats.cache_misses for r in chunk)
            rate = hits / (hits + misses) if hits + misses else 0.0
            mean_us = float(np.mean([r.response_time for r in chunk])) * 1e6
            print(f"  phase {phase + 1}: hit rate {rate:5.3f}   "
                  f"mean response {mean_us:7.1f} us")
        print(f"  overall throughput: {report.throughput():,.0f} queries/s\n")

    print(
        "Embed routing re-concentrates each new trending region onto one "
        "processor's\ncache within a phase — no repartitioning, no routing-"
        "table updates — while\nhash routing keeps spraying each region "
        "across the whole tier."
    )


if __name__ == "__main__":
    main()
