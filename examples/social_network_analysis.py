#!/usr/bin/env python
"""Ego-centric queries on a social network with a shifting hotspot.

Models the paper's motivating LinkedIn scenario (§1): ego-centric queries
("who is within 2 hops of this member?") concentrated around trending
profiles, where the trending region moves over time. One long-lived
:class:`GraphService` serves the whole timeline; each trending phase is a
:class:`QuerySession`, so per-phase reports come straight from the session
API instead of slicing one flat record list. Embed routing adapts its
per-processor EMA to each new hotspot without any re-partitioning — the
per-session reports show cache hit rate recovering after every shift.

Run:  python examples/social_network_analysis.py
"""

import numpy as np

from repro import ClusterConfig, GraphService
from repro.core import GraphAssets, NeighborAggregationQuery, RandomWalkQuery
from repro.graph import community_graph


def trending_phase_workloads(assets, phases=4, regions_per_phase=10,
                             queries_per_region=12, seed=3):
    """One workload per phase, each interleaving fresh trending regions.

    Interleaving is what separates the schemes: hash routing sprays every
    region across the whole tier, while embed routing pins each region to
    one processor's cache.
    """
    rng = np.random.default_rng(seed)
    csr = assets.csr_both
    eligible = np.flatnonzero(csr.degrees() > 0)
    workloads = []
    for _phase in range(phases):
        balls = []
        for _ in range(regions_per_phase):
            center = int(eligible[rng.integers(0, eligible.size)])
            ball = np.flatnonzero(csr.bfs_distances([center], max_hops=2) >= 0)
            balls.append(csr.node_ids[ball])
        workload = []
        for i in range(queries_per_region):
            for ball_ids in balls:  # round-robin across trending regions
                node = int(ball_ids[rng.integers(0, ball_ids.size)])
                if i % 3 == 2:
                    workload.append(RandomWalkQuery(
                        node=node, steps=2, seed=int(rng.integers(2**31))))
                else:
                    workload.append(NeighborAggregationQuery(node=node, hops=2))
        workloads.append(workload)
    return workloads


def main() -> None:
    print("Building a community-structured social network ...")
    graph = community_graph(150, 130, intra_degree=8, inter_degree=0.4,
                            seed=2)
    assets = GraphAssets(graph)
    print(f"  {graph.num_nodes:,} members, {graph.num_edges:,} links")

    phase_workloads = trending_phase_workloads(assets)
    print(f"Workload: {len(phase_workloads)} trending phases x "
          f"{len(phase_workloads[0])} queries (10 interleaved regions each)\n")

    for scheme in ("hash", "embed"):
        config = ClusterConfig(
            routing=scheme,
            num_processors=7,
            num_storage_servers=4,
            cache_capacity_bytes=8 << 20,
            embed_method="lmds",
            num_landmarks=48,
        )
        print(f"--- {scheme} routing ---")
        total_queries = 0
        with GraphService.open(graph, config, assets=assets) as service:
            for phase, workload in enumerate(phase_workloads):
                with service.session() as session:  # one session per phase
                    session.stream(workload)
                    report = session.report()
                total_queries += len(report.records)
                print(f"  phase {phase + 1}: "
                      f"hit rate {report.cache_hit_rate():5.3f}   "
                      f"mean response "
                      f"{report.mean_response_time() * 1e6:7.1f} us")
            throughput = total_queries / service.env.now
        print(f"  overall throughput: {throughput:,.0f} queries/s\n")

    print(
        "Embed routing re-concentrates each new trending region onto one "
        "processor's\ncache within a phase — no repartitioning, no routing-"
        "table updates — while\nhash routing keeps spraying each region "
        "across the whole tier."
    )


if __name__ == "__main__":
    main()
